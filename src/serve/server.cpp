#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/compiler.hpp"
#include "core/spec.hpp"
#include "dse/sweep.hpp"
#include "lint/lint.hpp"
#include "netlist/verilog_parser.hpp"
#include "netmap/model.hpp"
#include "netmap/netmap.hpp"
#include "obs/obs.hpp"

namespace syndcim::serve {

namespace {

std::string bool_json(bool b) { return b ? "true" : "false"; }

/// Canonical serialization of a kv map (std::map iterates sorted), used
/// as the single-flight key for sweep requests.
std::string kv_key(const std::map<std::string, std::string>& kv) {
  std::string out;
  for (const auto& [k, v] : kv) {
    out += k;
    out += '=';
    out += v;
    out += ';';
  }
  return out;
}

bool kv_flag(std::map<std::string, std::string>& kv, const std::string& key,
             bool fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  const bool on = it->second == "1" || it->second == "true";
  const bool off = it->second == "0" || it->second == "false";
  if (!on && !off) {
    throw std::invalid_argument("param '" + key + "' must be a boolean, got '" +
                                it->second + "'");
  }
  kv.erase(it);
  return on;
}

int kv_int(std::map<std::string, std::string>& kv, const std::string& key,
           int fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  int v = 0;
  try {
    v = std::stoi(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("param '" + key + "' must be an integer");
  }
  kv.erase(it);
  return v;
}

double kv_double(std::map<std::string, std::string>& kv,
                 const std::string& key, double fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  double v = 0;
  try {
    v = std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("param '" + key + "' must be a number");
  }
  kv.erase(it);
  return v;
}

std::string kv_string(std::map<std::string, std::string>& kv,
                      const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end()) return "";
  std::string v = std::move(it->second);
  kv.erase(it);
  return v;
}

}  // namespace

Server::Server(const cell::Library& lib, ServerOptions opt)
    : lib_(lib), opt_(std::move(opt)) {
  store_ = std::make_shared<core::ArtifactStore>();
  if (opt_.artifact_max_entries > 0 || opt_.artifact_max_bytes > 0) {
    store_->set_capacity(opt_.artifact_max_entries, opt_.artifact_max_bytes);
  }
  if (!opt_.store_dir.empty()) {
    disk_ = std::make_unique<core::DiskBlobStore>(opt_.store_dir);
    store_->attach_blob_store(disk_.get());
  }
}

Server::~Server() {
  if (started_.load()) drain();
}

bool Server::start(std::string* err) {
  auto fail = [&](const std::string& what) {
    const std::string reason = what + ": " + std::strerror(errno);
    if (err != nullptr) *err = reason;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + opt_.host + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 64) < 0) return fail("listen");

  sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  start_ns_ = obs::now_ns();
  pool_ = std::make_unique<dse::WorkStealingPool>(
      opt_.workers < 1 ? 1 : opt_.workers);
  started_.store(true);
  acceptor_ = std::thread([this] { acceptor_loop(); });
  return true;
}

void Server::close_listener() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::acceptor_loop() {
  obs::tracer().set_thread_name("serve.acceptor");
  while (!draining_.load()) {
    pollfd pfd = {};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, 200);
    if (draining_.load()) break;
    if (r <= 0) continue;  // timeout / EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    std::lock_guard<std::mutex> lock(conns_mu_);
    std::size_t open = 0;
    for (const auto& c : conns_) {
      if (c->open.load()) ++open;
    }
    if (static_cast<int>(open) >= opt_.max_connections) {
      const std::string line =
          error_response("", kErrOverloaded, "connection limit reached") +
          "\n";
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      obs::metrics().counter("serve.conn.rejected").inc();
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = conns_.size() + 1;
    conns_.push_back(conn);
    obs::metrics().counter("serve.conn.accepted").inc();
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  obs::tracer().set_thread_name("serve.reader#" + std::to_string(conn->id));
  std::string buf;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = buf.find('\n')) != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        Request req;
        std::string perr;
        if (!parse_request(line, &req, &perr)) {
          send_line(conn, error_response("", kErrBadRequest, perr));
          obs::metrics().counter("serve.request.bad").inc();
          continue;
        }
        admit(conn, std::move(req));
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or hard error: the client is done sending
  }
  conn->open.store(false);
  // The client may still be reading responses for requests it already
  // sent — close only once no worker can write here anymore.
  while (conn->pending.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void Server::admit(const std::shared_ptr<Connection>& conn, Request req) {
  if (draining_.load() || drain_requested_.load()) {
    send_line(conn,
              error_response(req.id, kErrDraining, "daemon is draining"));
    obs::metrics().counter("serve.request.draining").inc();
    return;
  }
  auto token = std::make_shared<core::CancelToken>();
  const double dl =
      req.deadline_ms > 0 ? req.deadline_ms : opt_.default_deadline_ms;
  if (dl > 0) {
    token->set_deadline_after(
        std::chrono::nanoseconds(std::llround(dl * 1e6)));
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (static_cast<int>(queue_.size()) >= opt_.queue_capacity) {
      obs::metrics().counter("serve.request.rejected").inc();
      send_line(conn, error_response(req.id, kErrOverloaded,
                                     "request queue full (capacity " +
                                         std::to_string(opt_.queue_capacity) +
                                         ")"));
      return;
    }
    conn->pending.fetch_add(1);
    queue_.push_back(Pending{conn, std::move(req), std::move(token)});
    obs::metrics().gauge("serve.queue.depth").set(
        static_cast<double>(queue_.size()));
  }
  obs::metrics().counter("serve.request.accepted").inc();
  pool_->submit([this] { process_one(); });
}

void Server::process_one() {
  Pending pr;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.empty()) return;
    pr = std::move(queue_.front());
    queue_.pop_front();
    obs::metrics().gauge("serve.queue.depth").set(
        static_cast<double>(queue_.size()));
  }
  in_flight_.fetch_add(1);
  requests_total_.fetch_add(1);
  obs::tracer().set_thread_name("serve.req#" + pr.req.id);
  {
    obs::SpanGuard span("serve." + pr.req.method + "#" + pr.req.id);
    std::string line;
    try {
      pr.token->check("serve.queue");  // expired while waiting for a worker
      const std::string payload = dispatch(pr.req, pr.token);
      line = ok_response(pr.req.id, payload);
      obs::metrics().counter("serve.request.ok").inc();
    } catch (const core::CancelledError& e) {
      line = error_response(pr.req.id, kErrDeadline, e.what());
      obs::metrics().counter("serve.request.deadline").inc();
    } catch (const NotFoundError& e) {
      line = error_response(pr.req.id, kErrNotFound, e.what());
      obs::metrics().counter("serve.request.not_found").inc();
    } catch (const std::invalid_argument& e) {
      line = error_response(pr.req.id, kErrBadRequest, e.what());
      obs::metrics().counter("serve.request.bad").inc();
    } catch (const std::exception& e) {
      line = error_response(pr.req.id, kErrInternal, e.what());
      obs::metrics().counter("serve.request.error").inc();
    }
    send_line(pr.conn, line);
  }
  if (pr.req.method == "shutdown") request_drain();
  pr.conn->pending.fetch_sub(1);
  in_flight_.fetch_sub(1);
}

std::string Server::dispatch(const Request& req,
                             const std::shared_ptr<core::CancelToken>& token) {
  if (req.method == "compile") return handle_compile(req, token.get());
  if (req.method == "sweep") return handle_sweep(req, token.get());
  if (req.method == "netmap") return handle_netmap(req, token.get());
  if (req.method == "lint") return handle_lint(req);
  if (req.method == "metrics") return handle_metrics();
  if (req.method == "status") return handle_status();
  if (req.method == "shutdown") return "{\"draining\": true}";
  // 404 is distinct from 400: the line was well-formed, the verb is not
  // part of protocol v1.
  throw NotFoundError("unknown method '" + req.method + "'");
}

std::string Server::handle_compile(const Request& req,
                                   const core::CancelToken* token) {
  std::map<std::string, std::string> kv = params_to_kv(req.params);
  const bool search_only = kv_flag(kv, "search_only", false);
  const int lanes = kv_int(kv, "sim_lanes", 1);
  if (lanes < 1 || lanes > 64) {
    throw std::invalid_argument("sim_lanes must be in [1, 64]");
  }
  const core::PerfSpec spec = core::spec_from_kv(kv);
  const std::string key = std::string("compile|") +
                          (search_only ? "search|" : "full|") +
                          std::to_string(lanes) + "|" +
                          core::spec_full_key(spec);

  bool leader = false;
  const std::string payload = flight_.run(
      key,
      [&] {
        obs::metrics().counter("serve.compile.evaluated").inc();
        core::SynDcimCompiler compiler(lib_, store_);
        std::ostringstream os;
        if (search_only) {
          token->check("compile.search");
          const core::SearchResult res = compiler.search(spec);
          os << "{\"search_only\": true, \"feasible\": "
             << bool_json(res.feasible())
             << ", \"pareto_size\": " << res.pareto.size() << ", \"pareto\": [";
          for (std::size_t i = 0; i < res.pareto.size(); ++i) {
            const auto& p = res.pareto[i];
            if (i) os << ", ";
            os << "{\"label\": \"" << json_escape(p.label)
               << "\", \"feasible\": " << bool_json(p.feasible)
               << ", \"power_uw\": " << json_number(p.ppa.power_uw)
               << ", \"area_um2\": " << json_number(p.ppa.area_um2)
               << ", \"fmax_mhz\": " << json_number(p.ppa.fmax_mhz) << "}";
          }
          os << "]}";
        } else {
          core::Workload wl;
          wl.lanes = lanes;
          const core::CompileResult result = compiler.compile(spec, wl, token);
          std::size_t runs = 0, skips = 0;
          for (const core::StageRecord& s : result.impl.stages) {
            (s.skipped ? skips : runs) += 1;
          }
          const double total = static_cast<double>(runs + skips);
          os << "{\"search_only\": false, \"selected\": \""
             << json_escape(result.selected.label)
             << "\", \"pareto_size\": " << result.search.pareto.size()
             << ", \"fmax_mhz\": " << json_number(result.impl.fmax_mhz)
             << ", \"area_mm2\": " << json_number(result.impl.macro_area_mm2)
             << ", \"power_uw\": " << json_number(result.impl.total_power_uw)
             << ", \"tops_1b\": " << json_number(result.impl.tops_1b)
             << ", \"signoff_clean\": "
             << bool_json(result.impl.signoff_clean())
             << ", \"stages_run\": " << runs
             << ", \"stages_skipped\": " << skips << ", \"skip_pct\": "
             << json_number(total > 0 ? static_cast<double>(skips) / total
                                      : 0.0)
             << "}";
        }
        return os.str();
      },
      &leader, token);
  obs::metrics()
      .counter(leader ? "serve.singleflight.leader"
                      : "serve.singleflight.coalesced")
      .inc();
  return payload;
}

std::string Server::handle_sweep(const Request& req,
                                 const core::CancelToken* token) {
  std::map<std::string, std::string> kv = params_to_kv(req.params);
  int threads = kv_int(kv, "threads", opt_.sweep_threads);
  if (threads <= 0) threads = opt_.sweep_threads;
  const bool lint_frontier = kv_flag(kv, "lint_frontier", true);
  const std::string key = std::string("sweep|lint") +
                          (lint_frontier ? "1" : "0") + "|" + kv_key(kv);

  bool leader = false;
  const std::string payload = flight_.run(
      key,
      [&, kv] {
        obs::metrics().counter("serve.sweep.evaluated").inc();
        const dse::SweepGrid grid = dse::grid_from_kv(kv);
        const std::vector<core::PerfSpec> specs = grid.expand();
        dse::SweepOptions sopt;
        sopt.threads = threads;
        sopt.lint_frontier = lint_frontier;
        sopt.shared_store = store_.get();
        sopt.shared_eval_cache = &eval_cache_;
        sopt.cancel = token;
        const dse::SweepReport rep = dse::run_sweep(lib_, specs, sopt);
        if (rep.cancelled) throw core::CancelledError("sweep");

        const std::uint64_t eh = rep.cache.hits, em = rep.cache.misses;
        const std::uint64_t ah = rep.artifact_hits(),
                            am = rep.artifact_misses();
        const std::uint64_t looked = eh + em + ah + am;
        const double skip_pct =
            looked > 0
                ? static_cast<double>(eh + ah) / static_cast<double>(looked)
                : 0.0;
        std::ostringstream os;
        os << "{\"n_specs\": " << specs.size()
           << ", \"n_tasks\": " << rep.n_tasks
           << ", \"frontier_size\": " << rep.frontier.size()
           << ", \"wall_ms\": " << json_number(rep.wall_ms)
           << ", \"eval_cache\": {\"hits\": " << eh << ", \"misses\": " << em
           << "}, \"artifacts\": {\"hits\": " << ah << ", \"misses\": " << am
           << ", \"evicted\": " << store_->total_evicted()
           << "}, \"skip_pct\": " << json_number(skip_pct)
           << ", \"frontier_json\": \""
           << json_escape(dse::sweep_frontier_json(rep))
           << "\", \"report_json\": \""
           << json_escape(dse::sweep_report_json(rep)) << "\"}";
        return os.str();
      },
      &leader, token);
  obs::metrics()
      .counter(leader ? "serve.singleflight.leader"
                      : "serve.singleflight.coalesced")
      .inc();
  return payload;
}

std::string Server::handle_netmap(const Request& req,
                                  const core::CancelToken* token) {
  std::map<std::string, std::string> kv = params_to_kv(req.params);
  const std::string model_text = kv_string(kv, "model");
  if (model_text.empty()) {
    throw std::invalid_argument(
        "netmap wants params.model (syndcim-model v1 JSON as a string)");
  }
  const std::string frontier_text = kv_string(kv, "frontier_json");
  int threads = kv_int(kv, "threads", opt_.sweep_threads);
  if (threads <= 0) threads = opt_.sweep_threads;
  netmap::NetmapOptions nopt;
  nopt.budget.max_macros = kv_int(kv, "budget_macros", 8);
  nopt.budget.max_area_um2 = kv_double(kv, "budget_area_um2", 0.0);

  // Coalesce on everything that shapes the report; the (possibly large)
  // model/frontier documents enter the key by content hash + length.
  const std::string key =
      "netmap|" + std::to_string(nopt.budget.max_macros) + "|" +
      json_number(nopt.budget.max_area_um2) + "|m" +
      std::to_string(dse::fnv1a64(model_text)) + ":" +
      std::to_string(model_text.size()) + "|f" +
      std::to_string(dse::fnv1a64(frontier_text)) + ":" +
      std::to_string(frontier_text.size()) + "|" + kv_key(kv);

  bool leader = false;
  const std::string payload = flight_.run(
      key,
      [&, kv] {
        obs::metrics().counter("serve.netmap.evaluated").inc();
        core::DiagEngine diag;
        const netmap::Model model =
            netmap::parse_model(model_text, diag, "params.model");
        if (diag.has_errors()) {
          throw std::invalid_argument("model: " + diag.summary() + " — " +
                                      diag.diags().front().message);
        }
        std::vector<netmap::MacroCandidate> cands;
        if (!frontier_text.empty()) {
          cands = netmap::candidates_from_frontier_json(
              frontier_text, diag, "params.frontier_json");
          if (diag.has_errors()) {
            throw std::invalid_argument("frontier: " + diag.summary() +
                                        " — " +
                                        diag.diags().front().message);
          }
        } else {
          const dse::SweepGrid grid = dse::grid_from_kv(kv);
          dse::SweepOptions sopt;
          sopt.threads = threads;
          // Candidates only need the frontier points themselves; the
          // lint annotations never reach the netmap report, so skip the
          // sequential frontier lint.
          sopt.lint_frontier = false;
          sopt.shared_store = store_.get();
          sopt.shared_eval_cache = &eval_cache_;
          sopt.cancel = token;
          const dse::SweepReport rep =
              dse::run_sweep(lib_, grid.expand(), sopt);
          if (rep.cancelled) throw core::CancelledError("netmap.sweep");
          cands = netmap::candidates_from_frontier(rep);
        }
        token->check("netmap.map");
        const netmap::NetmapResult res = netmap::run_netmap(model, cands, nopt);
        std::ostringstream os;
        os << "{\"layers\": " << res.layers.size()
           << ", \"candidates\": " << res.candidates.size()
           << ", \"fleet_macros\": " << res.fleet_macros
           << ", \"total_time_us\": " << json_number(res.total_time_us)
           << ", \"total_energy_pj\": " << json_number(res.total_energy_pj)
           << ", \"utilization\": " << json_number(res.utilization)
           << ", \"homog_valid\": " << bool_json(res.homog.valid)
           << ", \"homog_energy_pj\": " << json_number(res.homog.energy_pj)
           << ", \"report_json\": \""
           << json_escape(netmap::netmap_report_json(res)) << "\"}";
        return os.str();
      },
      &leader, token);
  obs::metrics()
      .counter(leader ? "serve.singleflight.leader"
                      : "serve.singleflight.coalesced")
      .inc();
  return payload;
}

std::string Server::handle_lint(const Request& req) {
  const JsonValue* netlist_v =
      req.params.is_object() ? req.params.find("netlist") : nullptr;
  if (netlist_v == nullptr || !netlist_v->is_string()) {
    throw std::invalid_argument("lint wants params.netlist (Verilog source)");
  }
  std::string top, write_clock;
  if (const JsonValue* t = req.params.find("top")) top = t->as_kv_string();
  if (const JsonValue* w = req.params.find("write_clock")) {
    write_clock = w->as_kv_string();
  }

  core::DiagEngine diag;
  std::istringstream vf(netlist_v->as_string());
  const netlist::Design design = netlist::parse_verilog(vf, &diag);

  // Top inference mirrors the CLI: the unique module that is never
  // instantiated as a submodule.
  if (top.empty()) {
    const std::vector<std::string> modules = design.module_names();
    std::vector<std::string> roots;
    for (const std::string& name : modules) {
      bool used = false;
      for (const std::string& other : modules) {
        for (const auto& inst : design.module(other).instances()) {
          used = used || (!inst.is_cell && inst.master == name);
        }
      }
      if (!used) roots.push_back(name);
    }
    if (roots.size() == 1) {
      top = roots.front();
    } else if (modules.empty()) {
      diag.error("LINT-STRUCT", "netlist contains no modules", "<request>",
                 "lint");
    } else {
      throw std::invalid_argument(
          "cannot infer top module; pass params.top");
    }
  }

  lint::LintOptions lopt;
  lopt.write_clock = write_clock;
  if (!top.empty() && design.has_module(top)) {
    (void)lint::lint_design(design, top, diag, lopt);
    try {
      const netlist::FlatNetlist flat = netlist::flatten(design, top);
      (void)lint::lint_netlist(flat, lib_, diag, lopt);
    } catch (const std::exception& e) {
      diag.error("LINT-STRUCT",
                 std::string("cannot flatten for netlist-level checks: ") +
                     e.what(),
                 top, "lint");
    }
  } else if (!top.empty()) {
    diag.error("LINT-STRUCT", "top module '" + top + "' not found", top,
               "lint");
  }

  std::ostringstream os;
  os << "{\"errors\": " << diag.error_count()
     << ", \"warnings\": " << diag.warning_count()
     << ", \"clean\": " << bool_json(!diag.has_errors()) << ", \"summary\": \""
     << json_escape(diag.summary()) << "\", \"diagnostics_json\": \""
     << json_escape(diag.to_json()) << "\"}";
  return os.str();
}

std::string Server::handle_metrics() {
  obs::metrics().gauge("serve.inflight").set(
      static_cast<double>(in_flight_.load()));
  store_->publish_metrics("serve.artifact");
  std::ostringstream os;
  os << "{\"metrics_json\": \"" << json_escape(obs::metrics().to_json())
     << "\", \"artifact_store_json\": \"" << json_escape(store_->stats_json())
     << "\", \"blob_store_json\": \""
     << json_escape(disk_ != nullptr ? disk_->stats_json() : std::string())
     << "\"}";
  return os.str();
}

std::string Server::handle_status() {
  std::size_t queue_depth;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_depth = queue_.size();
  }
  std::size_t open_conns = 0;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& c : conns_) {
      if (c->open.load()) ++open_conns;
    }
  }
  const double uptime_ms =
      static_cast<double>(obs::now_ns() - start_ns_) / 1e6;
  std::uint64_t l2_hits = 0, l2_misses = 0, l2_writes = 0;
  for (const core::ArtifactTierStats& t : store_->stats()) {
    l2_hits += t.l2_hits;
    l2_misses += t.l2_misses;
    l2_writes += t.l2_writes;
  }
  std::ostringstream store_json;
  store_json << "{\"attached\": " << bool_json(disk_ != nullptr)
             << ", \"l2_hits\": " << l2_hits << ", \"l2_misses\": " << l2_misses
             << ", \"l2_writes\": " << l2_writes;
  if (disk_ != nullptr) {
    const core::DiskStoreStats ds = disk_->stats();
    store_json << ", \"root\": \"" << json_escape(disk_->root())
               << "\", \"usable\": " << bool_json(disk_->usable())
               << ", \"objects_read\": " << ds.objects_read
               << ", \"objects_written\": " << ds.objects_written
               << ", \"bytes_read\": " << ds.bytes_read
               << ", \"bytes_written\": " << ds.bytes_written;
  }
  store_json << "}";
  std::ostringstream os;
  os << "{\"proto\": \"" << kProtoName << "\", \"version\": " << kProtoVersion
     << ", \"uptime_ms\": " << json_number(uptime_ms)
     << ", \"draining\": " << bool_json(draining_.load() ||
                                        drain_requested_.load())
     << ", \"in_flight\": " << in_flight_.load()
     << ", \"queue_depth\": " << queue_depth
     << ", \"queue_capacity\": " << opt_.queue_capacity
     << ", \"connections\": " << open_conns
     << ", \"requests_total\": " << requests_total_.load()
     << ", \"workers\": " << (pool_ ? pool_->size() : 0)
     << ", \"artifact_entries\": " << store_->total_entries()
     << ", \"artifact_hits\": " << store_->total_hits()
     << ", \"artifact_misses\": " << store_->total_misses()
     << ", \"artifact_evicted\": " << store_->total_evicted()
     << ", \"eval_entries\": " << eval_cache_.size()
     << ", \"store\": " << store_json.str() << "}";
  return os.str();
}

void Server::send_line(const std::shared_ptr<Connection>& conn,
                       const std::string& line) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->fd < 0) return;
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(conn->fd, out.data() + off, out.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer gone; the request itself still completed
    }
    off += static_cast<std::size_t>(n);
  }
}

void Server::drain() {
  if (!started_.load()) return;
  if (drained_.exchange(true)) return;
  drain_requested_.store(true);
  draining_.store(true);

  // 1. Stop accepting: the poll loop observes draining_ within 200 ms;
  //    closing the listen fd makes a racing accept fail immediately.
  close_listener();
  if (acceptor_.joinable()) acceptor_.join();

  // 2. Finish everything admitted. A request admitted between the drain
  //    flag flip and wait_idle() is still tracked by the pool; any
  //    stragglers left in the queue are processed inline.
  pool_->wait_idle();
  while (true) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.empty()) break;
    }
    process_one();
  }
  pool_->wait_idle();

  // 3. Wake every reader (recv returns 0) and let it close its fd once
  //    its last response is written, then join.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& c : conns_) {
      std::lock_guard<std::mutex> wlock(c->write_mu);
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  for (const auto& c : conns_) {
    if (c->reader.joinable()) c->reader.join();
  }

  // 4. Flush every dirty artifact to the durable store — no worker runs
  //    anymore, so this is the single-threaded write-back point that
  //    makes the next daemon start warm.
  if (disk_ != nullptr) (void)store_->flush_l2();

  // 5. Flush observability artifacts — the drain path shared with the
  //    batch CLI's signal handling.
  if (!opt_.trace_path.empty()) (void)obs::tracer().save(opt_.trace_path);
  if (!opt_.metrics_path.empty()) {
    store_->publish_metrics("serve.artifact");
    (void)obs::metrics().save(opt_.metrics_path);
  }
}

int Server::serve_forever(const core::CancelToken* interrupt) {
  while (!drain_requested_.load() &&
         (interrupt == nullptr || !interrupt->cancelled())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  drain();
  return 0;
}

}  // namespace syndcim::serve

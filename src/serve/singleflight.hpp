#pragma once
// Single-flight request batching: concurrent calls with the same key
// share one execution. The first caller (the leader) runs `fn`; callers
// that arrive while it is in flight block and receive the leader's
// result — the daemon-side answer to K tenants submitting the identical
// compile at once, which must cost exactly one evaluation.
//
// The key is erased once the leader finishes, so sequential identical
// calls each execute (the artifact store and eval cache make those warm
// — single-flight only deduplicates *overlapping* work).
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/cancel.hpp"

namespace syndcim::serve {

class SingleFlight {
 public:
  /// Runs `fn` for `key`, or waits for an in-flight execution of the same
  /// key and returns its result. `*was_leader` reports which happened.
  /// A waiting follower polls `cancel` (when given) every ~50 ms and
  /// unwinds with CancelledError on its *own* deadline — it does not
  /// inherit the leader's. A leader failure is replayed to every
  /// follower: CancelledError when the leader was cancelled, otherwise
  /// std::runtime_error carrying the leader's message.
  std::string run(const std::string& key,
                  const std::function<std::string()>& fn, bool* was_leader,
                  const core::CancelToken* cancel = nullptr) {
    std::shared_ptr<Call> call;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = calls_.find(key);
      if (it != calls_.end()) {
        call = it->second;
      } else {
        call = std::make_shared<Call>();
        calls_.emplace(key, call);
      }
    }
    if (call->leader_claimed.exchange(true)) {
      if (was_leader != nullptr) *was_leader = false;
      return wait_for(*call, cancel);
    }
    if (was_leader != nullptr) *was_leader = true;
    try {
      std::string result = fn();
      finish(key, *call, [&](Call& c) { c.result = std::move(result); });
      return call->result;
    } catch (const core::CancelledError& e) {
      finish(key, *call, [&](Call& c) {
        c.cancelled = true;
        c.error = e.what();
      });
      throw;
    } catch (const std::exception& e) {
      finish(key, *call, [&](Call& c) {
        c.failed = true;
        c.error = e.what();
      });
      throw;
    }
  }

 private:
  struct Call {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> leader_claimed{false};
    bool done = false;
    bool failed = false;
    bool cancelled = false;
    std::string result;
    std::string error;
  };

  template <typename F>
  void finish(const std::string& key, Call& call, F&& fill) {
    {
      std::lock_guard<std::mutex> lock(call.mu);
      fill(call);
      call.done = true;
    }
    call.cv.notify_all();
    std::lock_guard<std::mutex> lock(mu_);
    calls_.erase(key);
  }

  static std::string wait_for(Call& call, const core::CancelToken* cancel) {
    std::unique_lock<std::mutex> lock(call.mu);
    while (!call.done) {
      call.cv.wait_for(lock, std::chrono::milliseconds(50));
      if (!call.done && cancel != nullptr) cancel->check("singleflight.wait");
    }
    if (call.cancelled) {
      // call.error is the leader's what() — already "cancelled: "-prefixed.
      constexpr std::string_view kPrefix = "cancelled: ";
      std::string where = call.error;
      if (where.rfind(kPrefix, 0) == 0) where.erase(0, kPrefix.size());
      throw core::CancelledError(where);
    }
    if (call.failed) {
      throw std::runtime_error("coalesced request failed: " + call.error);
    }
    return call.result;
  }

  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Call>> calls_;
};

}  // namespace syndcim::serve

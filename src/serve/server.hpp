#pragma once
// syndcim serve: a persistent compiler-as-a-service daemon. One process
// holds one ArtifactStore and one whole-config EvalCache; every request
// — from any connection, i.e. any tenant — characterizes through them,
// so tenant B's compile warm-hits the subcircuit artifacts tenant A's
// sweep produced seconds earlier.
//
// Threading model:
//   - one acceptor thread (poll + accept on the listen socket),
//   - one reader thread per connection (parses NDJSON lines, performs
//     admission control inline: 503 while draining, 429 when the bounded
//     request queue is full),
//   - a WorkStealingPool of request workers that pop the queue, run the
//     handler under a per-request CancelToken (deadline armed at
//     admission, so time spent queued counts), and write the response
//     under the connection's write mutex.
//
// Graceful drain: stop accepting, answer new requests with 503, finish
// everything in flight, flush trace/metrics artifacts, close connections.
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cell/library.hpp"
#include "core/cancel.hpp"
#include "core/diskstore.hpp"
#include "core/stage.hpp"
#include "dse/eval_cache.hpp"
#include "dse/pool.hpp"
#include "serve/protocol.hpp"
#include "serve/singleflight.hpp"

namespace syndcim::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;             ///< 0: ephemeral (read back via Server::port())
  int workers = 2;          ///< request worker threads (clamped to >= 1)
  int queue_capacity = 32;  ///< admitted-but-unfinished request cap
  /// Threads each in-request sweep may use (<= 0: hardware concurrency).
  /// Kept small by default so concurrent tenants share the machine.
  int sweep_threads = 2;
  int max_connections = 64;
  /// Per-tier artifact store bounds (0 = unlimited); see
  /// ArtifactStore::set_capacity.
  std::size_t artifact_max_entries = 0;
  std::size_t artifact_max_bytes = 0;
  /// Default request deadline when the request carries none (0 = none).
  double default_deadline_ms = 0;
  std::string trace_path;    ///< Chrome trace JSON flushed on drain
  std::string metrics_path;  ///< metrics registry JSON flushed on drain
  /// Durable artifact store directory (core::DiskBlobStore). When set,
  /// the process-wide ArtifactStore reads through and writes back to it:
  /// a restarted daemon answers its first repeated request from L2
  /// instead of recomputing. Drain flushes every dirty artifact before
  /// exit. Empty = in-memory only (restarts are cold).
  std::string store_dir;
};

class Server {
 public:
  Server(const cell::Library& lib, ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor + worker pool. False (with a
  /// reason) when the socket setup fails.
  [[nodiscard]] bool start(std::string* err);

  /// The bound port (after start(); resolves port 0 to the actual one).
  [[nodiscard]] int port() const { return port_; }

  /// Asks the serve loop to drain (used by the `shutdown` method and by
  /// signal handlers via serve_forever's polling). Safe from any thread;
  /// does not block.
  void request_drain() { drain_requested_.store(true); }
  [[nodiscard]] bool drain_requested() const {
    return drain_requested_.load();
  }
  [[nodiscard]] bool draining() const { return draining_.load(); }

  /// Graceful shutdown: stop accepting, fail new requests with 503,
  /// finish in-flight work, flush observability artifacts, close every
  /// connection and join all threads. Idempotent. Must not be called
  /// from a request worker (it waits for the pool to go idle).
  void drain();

  /// Runs until request_drain() or `interrupt` trips, then drains.
  /// Returns 0.
  int serve_forever(const core::CancelToken* interrupt = nullptr);

  /// The process-wide artifact store (test/introspection hook).
  [[nodiscard]] core::ArtifactStore& store() { return *store_; }
  [[nodiscard]] dse::EvalCache& eval_cache() { return eval_cache_; }
  /// The durable L2 blob store, or nullptr when no store_dir was given
  /// (test/introspection hook).
  [[nodiscard]] core::DiskBlobStore* blob_store() { return disk_.get(); }

 private:
  struct Connection {
    int fd = -1;  ///< closed (and set to -1) under write_mu
    std::uint64_t id = 0;
    std::mutex write_mu;
    std::atomic<bool> open{true};
    /// Requests admitted from this connection whose response is not yet
    /// written; the reader defers close() until it reaches zero.
    std::atomic<int> pending{0};
    std::thread reader;
  };

  struct Pending {
    std::shared_ptr<Connection> conn;
    Request req;
    std::shared_ptr<core::CancelToken> token;
  };

  void acceptor_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  /// Admission control + enqueue; answers 429/503 inline on the reader.
  void admit(const std::shared_ptr<Connection>& conn, Request req);
  void process_one();
  /// Method dispatch; returns the single-line `result` JSON payload.
  /// Throws CancelledError (-> 408), std::invalid_argument (-> 400) or
  /// anything else (-> 500).
  std::string dispatch(const Request& req,
                       const std::shared_ptr<core::CancelToken>& token);

  std::string handle_compile(const Request& req,
                             const core::CancelToken* token);
  std::string handle_sweep(const Request& req, const core::CancelToken* token);
  std::string handle_netmap(const Request& req,
                            const core::CancelToken* token);
  std::string handle_lint(const Request& req);
  std::string handle_metrics();
  std::string handle_status();

  void send_line(const std::shared_ptr<Connection>& conn,
                 const std::string& line);
  void close_listener();

  const cell::Library& lib_;
  ServerOptions opt_;
  std::shared_ptr<core::ArtifactStore> store_;
  std::unique_ptr<core::DiskBlobStore> disk_;
  dse::EvalCache eval_cache_;
  SingleFlight flight_;
  std::unique_ptr<dse::WorkStealingPool> pool_;

  /// Bounded request queue: try_push fails when full (-> 429).
  std::mutex queue_mu_;
  std::deque<Pending> queue_;

  /// Atomic: drain() closes-and-resets it while the acceptor reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread acceptor_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<bool> started_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::uint64_t start_ns_ = 0;
};

}  // namespace syndcim::serve

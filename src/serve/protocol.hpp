#pragma once
// "syndcim-serve" v1 wire protocol: newline-delimited JSON over a byte
// stream. One request per line, one response line per request, responses
// may arrive out of order relative to other requests on the same
// connection (match on `id`). See DESIGN.md for the full specification.
//
// Request line:
//   {"id": <string|number>, "method": "compile"|"sweep"|"netmap"|"lint"|
//    "metrics"|"status"|"shutdown", "deadline_ms": <number, optional>,
//    "params": {<string|number values>, optional}}
//
// `netmap` maps a layer-graph model onto a macro fleet: params.model is
// the "syndcim-model" v1 JSON document as a string, params.frontier_json
// optionally a persisted sweep frontier (otherwise the remaining params
// form an inline sweep grid exactly like `sweep`), plus budget_macros /
// budget_area_um2. The result's report_json member is byte-identical to
// the batch `syndcim netmap --json` output for the same inputs.
//
// Response line:
//   {"proto": "syndcim-serve", "version": 1, "id": "<echoed>",
//    "status": "ok", "result": {...}}
//   {"proto": "syndcim-serve", "version": 1, "id": "<echoed>",
//    "status": "error", "error": {"code": <int>, "reason": "..."}}
#include <map>
#include <stdexcept>
#include <string>

#include "serve/json.hpp"

namespace syndcim::serve {

/// Thrown by the dispatcher for a well-formed request naming a method
/// that is not part of protocol v1 (mapped to a 404 response — distinct
/// from 400, which means the line itself was malformed).
class NotFoundError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr const char* kProtoName = "syndcim-serve";
inline constexpr int kProtoVersion = 1;

/// HTTP-flavoured error codes (the protocol is not HTTP; the numbers
/// reuse the well-known meanings so clients need no new vocabulary).
inline constexpr int kErrBadRequest = 400;  ///< malformed line / params
inline constexpr int kErrNotFound = 404;    ///< unknown method
inline constexpr int kErrDeadline = 408;    ///< deadline exceeded
inline constexpr int kErrOverloaded = 429;  ///< admission-control reject
inline constexpr int kErrInternal = 500;    ///< handler threw
inline constexpr int kErrDraining = 503;    ///< daemon is shutting down

/// One parsed request line.
struct Request {
  std::string id;          ///< echoed verbatim in the response ("" ok)
  std::string method;
  double deadline_ms = 0;  ///< <= 0: server default (which may be none)
  JsonValue params;        ///< object; kNull when the line had none
};

/// Parses one request line. On failure returns false with a reason in
/// `err` (the server answers those with a 400 carrying the reason).
[[nodiscard]] bool parse_request(const std::string& line, Request* out,
                                 std::string* err);

/// Flattens `params` members into string key/values (numbers and bools
/// are rendered — `"rows": 64` and `"rows": "64"` are equivalent on the
/// wire). Throws std::invalid_argument on nested arrays/objects.
[[nodiscard]] std::map<std::string, std::string> params_to_kv(
    const JsonValue& params);

/// `result_json` is spliced verbatim as the `result` member — it must be
/// one self-contained single-line JSON value.
[[nodiscard]] std::string ok_response(const std::string& id,
                                      const std::string& result_json);
[[nodiscard]] std::string error_response(const std::string& id, int code,
                                         const std::string& reason);

}  // namespace syndcim::serve

#include "serve/protocol.hpp"

#include <stdexcept>

namespace syndcim::serve {

bool parse_request(const std::string& line, Request* out, std::string* err) {
  JsonValue v;
  if (!json_parse(line, &v, err)) return false;
  if (!v.is_object()) {
    if (err != nullptr) *err = "request must be a JSON object";
    return false;
  }
  Request req;
  if (const JsonValue* id = v.find("id")) {
    if (!id->is_string() && !id->is_number()) {
      if (err != nullptr) *err = "'id' must be a string or number";
      return false;
    }
    req.id = id->as_kv_string();
  }
  const JsonValue* method = v.find("method");
  if (method == nullptr || !method->is_string() ||
      method->as_string().empty()) {
    if (err != nullptr) *err = "missing 'method' string";
    return false;
  }
  req.method = method->as_string();
  if (const JsonValue* dl = v.find("deadline_ms")) {
    if (!dl->is_number() || dl->as_number() < 0) {
      if (err != nullptr) *err = "'deadline_ms' must be a number >= 0";
      return false;
    }
    req.deadline_ms = dl->as_number();
  }
  if (const JsonValue* params = v.find("params")) {
    if (!params->is_object()) {
      if (err != nullptr) *err = "'params' must be an object";
      return false;
    }
    req.params = *params;
  }
  *out = std::move(req);
  return true;
}

std::map<std::string, std::string> params_to_kv(const JsonValue& params) {
  std::map<std::string, std::string> kv;
  if (params.is_null()) return kv;
  for (const auto& [k, v] : params.members()) {
    if (v.is_array() || v.is_object()) {
      throw std::invalid_argument("param '" + k +
                                  "' must be a scalar (string or number)");
    }
    kv[k] = v.as_kv_string();
  }
  return kv;
}

namespace {
std::string response_head(const std::string& id) {
  return std::string("{\"proto\": \"") + kProtoName +
         "\", \"version\": " + std::to_string(kProtoVersion) +
         ", \"id\": \"" + json_escape(id) + "\"";
}
}  // namespace

std::string ok_response(const std::string& id,
                        const std::string& result_json) {
  return response_head(id) + ", \"status\": \"ok\", \"result\": " +
         result_json + "}";
}

std::string error_response(const std::string& id, int code,
                           const std::string& reason) {
  return response_head(id) + ", \"status\": \"error\", \"error\": {\"code\": " +
         std::to_string(code) + ", \"reason\": \"" + json_escape(reason) +
         "\"}}";
}

}  // namespace syndcim::serve

#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace syndcim::serve {

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string err;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool fail(const std::string& what) {
    if (err.empty()) {
      err = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return fail("invalid literal");
    }
    pos += word.size();
    return true;
  }

  bool parse_hex4(std::uint32_t* out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape digit");
      }
    }
    pos += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string* s, std::uint32_t cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string* out) {
    if (at_end() || peek() != '"') return fail("expected string");
    ++pos;
    out->clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (at_end()) return fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!parse_hex4(&cp)) return false;
            // Surrogate pair: a high surrogate must be followed by
            // \uDC00..\uDFFF; combine into one code point.
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              if (pos + 1 >= text.size() || text[pos] != '\\' ||
                  text[pos + 1] != 'u') {
                return fail("unpaired surrogate");
              }
              pos += 2;
              std::uint32_t lo = 0;
              if (!parse_hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return fail("bad low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("unpaired surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out->push_back(c);
      }
    }
  }

  bool parse_number(double* out) {
    const std::size_t start = pos;
    if (!at_end() && peek() == '-') ++pos;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos;
    }
    if (!at_end() && peek() == '.') {
      ++pos;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (pos == start) return fail("expected number");
    const std::string tok(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return fail("malformed number");
    }
    *out = v;
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    if (c == 'n') {
      if (!literal("null")) return false;
      *out = JsonValue::null();
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      *out = JsonValue::boolean(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      *out = JsonValue::boolean(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = JsonValue::string(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      JsonValue arr = JsonValue::array();
      skip_ws();
      if (!at_end() && peek() == ']') {
        ++pos;
        *out = std::move(arr);
        return true;
      }
      while (true) {
        JsonValue item;
        if (!parse_value(&item, depth + 1)) return false;
        arr.push_back(std::move(item));
        skip_ws();
        if (at_end()) return fail("unterminated array");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        if (peek() == ']') {
          ++pos;
          *out = std::move(arr);
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos;
      JsonValue obj = JsonValue::object();
      skip_ws();
      if (!at_end() && peek() == '}') {
        ++pos;
        *out = std::move(obj);
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (at_end() || peek() != ':') return fail("expected ':'");
        ++pos;
        JsonValue val;
        if (!parse_value(&val, depth + 1)) return false;
        obj.set(std::move(key), std::move(val));
        skip_ws();
        if (at_end()) return fail("unterminated object");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        if (peek() == '}') {
          ++pos;
          *out = std::move(obj);
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    double d = 0.0;
    if (!parse_number(&d)) return false;
    *out = JsonValue::number(d);
    return true;
  }
};

void dump_value(const JsonValue& v, std::ostringstream& os) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: os << "null"; break;
    case JsonValue::Kind::kBool: os << (v.as_bool() ? "true" : "false"); break;
    case JsonValue::Kind::kNumber: os << json_number(v.as_number()); break;
    case JsonValue::Kind::kString:
      os << '"' << json_escape(v.as_string()) << '"';
      break;
    case JsonValue::Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i) os << ", ";
        dump_value(v.at(i), os);
      }
      os << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, m] : v.members()) {
        if (!first) os << ", ";
        first = false;
        os << '"' << json_escape(k) << "\": ";
        dump_value(m, os);
      }
      os << '}';
      break;
    }
  }
}

}  // namespace

std::string JsonValue::as_kv_string() const {
  if (is_string()) return str_;
  if (is_number()) return json_number(num_);
  if (is_bool()) return bool_ ? "true" : "false";
  return std::string();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::dump() const {
  std::ostringstream os;
  dump_value(*this, os);
  return os.str();
}

bool json_parse(std::string_view text, JsonValue* out, std::string* err) {
  Parser p;
  p.text = text;
  JsonValue v;
  bool ok = p.parse_value(&v, 0);
  if (ok) {
    p.skip_ws();
    if (!p.at_end()) {
      ok = false;
      p.err = "trailing garbage at offset " + std::to_string(p.pos);
    }
  }
  if (!ok) {
    if (err != nullptr) *err = p.err.empty() ? "parse error" : p.err;
    return false;
  }
  *out = std::move(v);
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isfinite(v) && v == std::nearbyint(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace syndcim::serve

#pragma once
// Minimal JSON value + recursive-descent parser for the serve wire
// protocol. The compiler's own reports are *emitted* with hand-rolled
// deterministic printers (see dse::sweep_report_json) — this module is
// the other direction: parsing untrusted request lines off a socket and
// the client-side responses in tools/tests.
//
// Scope: full JSON data model (null/bool/number/string/array/object),
// UTF-8 passthrough with \uXXXX escapes decoded, objects kept as ordered
// key/value vectors (duplicate keys: first wins on lookup). Numbers are
// doubles — protocol fields are ids, counters and milliseconds, all well
// inside the 2^53 exact-integer range.
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace syndcim::serve {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.num_ = d;
    return v;
  }
  static JsonValue string(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.str_ = std::move(s);
    return v;
  }
  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  /// String value, or the number rendered as shortest round-trip decimal
  /// — the protocol accepts `"rows": 64` and `"rows": "64"` alike.
  [[nodiscard]] std::string as_kv_string() const;

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const JsonValue& at(std::size_t i) const {
    return items_[i].second;
  }
  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const {
    return items_;
  }

  void push_back(JsonValue v) { items_.emplace_back(std::string(), std::move(v)); }
  void set(std::string key, JsonValue v) {
    items_.emplace_back(std::move(key), std::move(v));
  }

  /// Compact single-line serialization (protocol lines must not contain
  /// raw newlines; the escaper handles those).
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  /// Array elements (empty keys) or object members, in insertion order.
  std::vector<std::pair<std::string, JsonValue>> items_;
};

/// Parses one JSON document; whitespace-padded trailing garbage is an
/// error. On failure returns nullopt-semantics via `ok=false` and a
/// human-readable message in `err` (position included).
[[nodiscard]] bool json_parse(std::string_view text, JsonValue* out,
                              std::string* err);

/// JSON string-literal escaping of `s` (no surrounding quotes): control
/// characters, quote and backslash become escapes, everything else is
/// passed through byte-for-byte (UTF-8 stays UTF-8). Escape/parse
/// round-trips bytes exactly — what the protocol relies on to carry
/// nested reports (frontier JSON, diagnostics) byte-identically.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Shortest round-trip decimal rendering of a double (integers print
/// without exponent/decimal point).
[[nodiscard]] std::string json_number(double v);

}  // namespace syndcim::serve

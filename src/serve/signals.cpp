#include "serve/signals.hpp"

#include <csignal>

#include <atomic>

namespace syndcim::serve {

namespace {
std::atomic<int> g_signal{0};

void on_signal(int sig) {
  // Async-signal-safe: two relaxed atomic stores, nothing else. First
  // signal wins so the exit code reports what actually interrupted us.
  int expected = 0;
  g_signal.compare_exchange_strong(expected, sig, std::memory_order_relaxed);
  interrupt_token().cancel();
}
}  // namespace

core::CancelToken& interrupt_token() {
  static core::CancelToken token;
  return token;
}

void install_shutdown_handlers() {
  // Touch the token first so the handler never runs a first-use
  // constructor (function-local static init is not signal-safe).
  (void)interrupt_token();
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking accept/read return EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() {
  return g_signal.load(std::memory_order_relaxed) != 0;
}

int shutdown_signal() { return g_signal.load(std::memory_order_relaxed); }

void reset_shutdown() {
  g_signal.store(0, std::memory_order_relaxed);
  interrupt_token().reset();
}

}  // namespace syndcim::serve

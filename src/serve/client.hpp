#pragma once
// syndcim-serve clients. `Client` is the blocking one-request-at-a-time
// connection; `MultiplexClient` keeps many requests in flight on a
// single connection, matching responses to pending requests by the
// protocol's `id` field on a dedicated reader thread — responses may
// arrive in any order relative to the sends (the daemon's workers finish
// whenever they finish).
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace syndcim::serve {

/// One parsed response line.
struct ClientResponse {
  bool ok = false;
  int code = 0;         ///< error code when !ok (400/404/408/429/500/503)
  std::string reason;   ///< error reason when !ok
  std::string id;       ///< echoed request id
  JsonValue result;     ///< `result` object when ok
  std::string raw;      ///< the full response line, verbatim
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connect(const std::string& host, int port,
                             std::string* err);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends one request and blocks for its response line. `params` values
  /// are sent as JSON strings; `deadline_ms` <= 0 omits the field. False
  /// only on transport/parse failure (an error *response* returns true
  /// with out->ok == false).
  [[nodiscard]] bool call(const std::string& method,
                          const std::map<std::string, std::string>& params,
                          double deadline_ms, ClientResponse* out,
                          std::string* err);

  /// Like call(), with one raw JSON value spliced in as an extra param —
  /// how the lint tool ships a Verilog source string.
  [[nodiscard]] bool call_extra(
      const std::string& method,
      const std::map<std::string, std::string>& params,
      const std::string& extra_key, const std::string& extra_string_value,
      double deadline_ms, ClientResponse* out, std::string* err);

  /// Sends a fully-formed request line (no trailing newline) verbatim.
  [[nodiscard]] bool call_raw(const std::string& request_line,
                              ClientResponse* out, std::string* err);

 private:
  [[nodiscard]] bool send_all(const std::string& data, std::string* err);
  [[nodiscard]] bool read_line(std::string* line, std::string* err);

  int fd_ = -1;
  int next_id_ = 1;
  std::string buf_;
};

/// Parses one response line into a ClientResponse (shared with tests).
[[nodiscard]] bool parse_response(const std::string& line, ClientResponse* out,
                                  std::string* err);

/// One connection, many requests in flight. send() returns immediately
/// with the assigned request id; a reader thread files every response
/// line under its echoed id, and wait() blocks until the one you ask for
/// has arrived. Thread-safe: any thread may send() or wait() — pipeline
/// depth is bounded only by the daemon's admission control. Responses
/// with an empty id (pre-parse 400s) are filed under "".
class MultiplexClient {
 public:
  MultiplexClient() = default;
  ~MultiplexClient();
  MultiplexClient(const MultiplexClient&) = delete;
  MultiplexClient& operator=(const MultiplexClient&) = delete;

  [[nodiscard]] bool connect(const std::string& host, int port,
                             std::string* err);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Fires one request without waiting and returns its id ("" on
  /// transport failure, with `err` set). `extra_key`, when non-empty,
  /// ships one more string param (how model/frontier documents travel).
  [[nodiscard]] std::string send(
      const std::string& method,
      const std::map<std::string, std::string>& params,
      const std::string& extra_key = "",
      const std::string& extra_string_value = "", double deadline_ms = 0,
      std::string* err = nullptr);

  /// Blocks until the response for `id` arrives. False when the
  /// connection died first (reason in `err`).
  [[nodiscard]] bool wait(const std::string& id, ClientResponse* out,
                          std::string* err);

 private:
  void reader_loop();

  int fd_ = -1;
  int next_id_ = 1;  ///< guarded by send_mu_
  std::mutex send_mu_;
  std::mutex mu_;  ///< guards done_, dead_, dead_reason_
  std::condition_variable cv_;
  std::map<std::string, std::deque<ClientResponse>> done_;
  bool dead_ = false;
  std::string dead_reason_;
  std::thread reader_;
};

}  // namespace syndcim::serve

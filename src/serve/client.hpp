#pragma once
// Blocking syndcim-serve client: one TCP connection, synchronous
// call/response (the caller that wants concurrency opens one Client per
// thread — the daemon multiplexes fine, but interleaving reads of
// out-of-order responses is more machinery than the tools and tests
// need).
#include <map>
#include <string>

#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace syndcim::serve {

/// One parsed response line.
struct ClientResponse {
  bool ok = false;
  int code = 0;         ///< error code when !ok (400/404/408/429/500/503)
  std::string reason;   ///< error reason when !ok
  std::string id;       ///< echoed request id
  JsonValue result;     ///< `result` object when ok
  std::string raw;      ///< the full response line, verbatim
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connect(const std::string& host, int port,
                             std::string* err);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends one request and blocks for its response line. `params` values
  /// are sent as JSON strings; `deadline_ms` <= 0 omits the field. False
  /// only on transport/parse failure (an error *response* returns true
  /// with out->ok == false).
  [[nodiscard]] bool call(const std::string& method,
                          const std::map<std::string, std::string>& params,
                          double deadline_ms, ClientResponse* out,
                          std::string* err);

  /// Like call(), with one raw JSON value spliced in as an extra param —
  /// how the lint tool ships a Verilog source string.
  [[nodiscard]] bool call_extra(
      const std::string& method,
      const std::map<std::string, std::string>& params,
      const std::string& extra_key, const std::string& extra_string_value,
      double deadline_ms, ClientResponse* out, std::string* err);

  /// Sends a fully-formed request line (no trailing newline) verbatim.
  [[nodiscard]] bool call_raw(const std::string& request_line,
                              ClientResponse* out, std::string* err);

 private:
  [[nodiscard]] bool send_all(const std::string& data, std::string* err);
  [[nodiscard]] bool read_line(std::string* line, std::string* err);

  int fd_ = -1;
  int next_id_ = 1;
  std::string buf_;
};

/// Parses one response line into a ClientResponse (shared with tests).
[[nodiscard]] bool parse_response(const std::string& line, ClientResponse* out,
                                  std::string* err);

}  // namespace syndcim::serve

#pragma once
// Process-wide SIGINT/SIGTERM handling, shared by the batch CLI and the
// serve daemon. The handler does exactly two async-signal-safe things:
// records the signal number and trips the process-wide CancelToken
// (relaxed atomic stores). Everything else — flushing reports, draining
// the request queue, writing trace/metrics artifacts — happens
// cooperatively on normal threads that poll `shutdown_requested()` or
// carry the token into their work loops.
#include "core/cancel.hpp"

namespace syndcim::serve {

/// The process-wide interrupt token. Batch sweeps pass it as
/// SweepOptions::cancel; compiles pass it to SynDcimCompiler::compile;
/// the daemon's serve loop polls it alongside its drain flag.
[[nodiscard]] core::CancelToken& interrupt_token();

/// Installs SIGINT and SIGTERM handlers (idempotent). Not thread-safe
/// against concurrent installs — call once from main() before spawning
/// workers.
void install_shutdown_handlers();

/// True once any handled signal arrived.
[[nodiscard]] bool shutdown_requested();

/// The first signal that arrived (0 when none). Batch commands exit with
/// the conventional 128 + signal after flushing their reports.
[[nodiscard]] int shutdown_signal();

/// Re-arms flag, signal number and token (tests only).
void reset_shutdown();

}  // namespace syndcim::serve

#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace syndcim::serve {

bool parse_response(const std::string& line, ClientResponse* out,
                    std::string* err) {
  JsonValue v;
  if (!json_parse(line, &v, err)) return false;
  if (!v.is_object()) {
    if (err != nullptr) *err = "response is not a JSON object";
    return false;
  }
  const JsonValue* proto = v.find("proto");
  const JsonValue* version = v.find("version");
  if (proto == nullptr || proto->as_string() != kProtoName ||
      version == nullptr ||
      static_cast<int>(version->as_number()) != kProtoVersion) {
    if (err != nullptr) *err = "not a syndcim-serve v1 response";
    return false;
  }
  ClientResponse resp;
  resp.raw = line;
  if (const JsonValue* id = v.find("id")) resp.id = id->as_kv_string();
  const JsonValue* status = v.find("status");
  if (status == nullptr || !status->is_string()) {
    if (err != nullptr) *err = "response has no 'status'";
    return false;
  }
  if (status->as_string() == "ok") {
    resp.ok = true;
    if (const JsonValue* result = v.find("result")) resp.result = *result;
  } else {
    resp.ok = false;
    if (const JsonValue* e = v.find("error")) {
      if (const JsonValue* code = e->find("code")) {
        resp.code = static_cast<int>(code->as_number());
      }
      if (const JsonValue* reason = e->find("reason")) {
        resp.reason = reason->as_string();
      }
    }
  }
  *out = std::move(resp);
  return true;
}

bool Client::connect(const std::string& host, int port, std::string* err) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "bad host address: " + host;
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err != nullptr) {
      *err = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

bool Client::send_all(const std::string& data, std::string* err) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err != nullptr) *err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::read_line(std::string* line, std::string* err) {
  char chunk[4096];
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (err != nullptr) {
      *err = n == 0 ? "connection closed by daemon"
                    : std::string("recv: ") + std::strerror(errno);
    }
    return false;
  }
}

bool Client::call_raw(const std::string& request_line, ClientResponse* out,
                      std::string* err) {
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  if (!send_all(request_line + "\n", err)) return false;
  std::string line;
  if (!read_line(&line, err)) return false;
  return parse_response(line, out, err);
}

bool Client::call(const std::string& method,
                  const std::map<std::string, std::string>& params,
                  double deadline_ms, ClientResponse* out, std::string* err) {
  return call_extra(method, params, std::string(), std::string(), deadline_ms,
                    out, err);
}

bool Client::call_extra(const std::string& method,
                        const std::map<std::string, std::string>& params,
                        const std::string& extra_key,
                        const std::string& extra_string_value,
                        double deadline_ms, ClientResponse* out,
                        std::string* err) {
  std::ostringstream os;
  os << "{\"id\": \"" << next_id_++ << "\", \"method\": \""
     << json_escape(method) << "\"";
  if (deadline_ms > 0) {
    os << ", \"deadline_ms\": " << json_number(deadline_ms);
  }
  os << ", \"params\": {";
  bool first = true;
  for (const auto& [k, v] : params) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(k) << "\": \"" << json_escape(v) << "\"";
  }
  if (!extra_key.empty()) {
    if (!first) os << ", ";
    os << "\"" << json_escape(extra_key) << "\": \""
       << json_escape(extra_string_value) << "\"";
  }
  os << "}}";
  return call_raw(os.str(), out, err);
}

}  // namespace syndcim::serve

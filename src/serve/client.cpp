#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace syndcim::serve {

namespace {

/// One request line (no trailing newline) — shared by both clients.
std::string build_request(int id, const std::string& method,
                          const std::map<std::string, std::string>& params,
                          const std::string& extra_key,
                          const std::string& extra_string_value,
                          double deadline_ms) {
  std::ostringstream os;
  os << "{\"id\": \"" << id << "\", \"method\": \"" << json_escape(method)
     << "\"";
  if (deadline_ms > 0) {
    os << ", \"deadline_ms\": " << json_number(deadline_ms);
  }
  os << ", \"params\": {";
  bool first = true;
  for (const auto& [k, v] : params) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(k) << "\": \"" << json_escape(v) << "\"";
  }
  if (!extra_key.empty()) {
    if (!first) os << ", ";
    os << "\"" << json_escape(extra_key) << "\": \""
       << json_escape(extra_string_value) << "\"";
  }
  os << "}}";
  return os.str();
}

/// Blocking connect of a fresh TCP socket; -1 with `err` set on failure.
int connect_fd(const std::string& host, int port, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "bad host address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err != nullptr) {
      *err = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all_fd(int fd, const std::string& data, std::string* err) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err != nullptr) *err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool parse_response(const std::string& line, ClientResponse* out,
                    std::string* err) {
  JsonValue v;
  if (!json_parse(line, &v, err)) return false;
  if (!v.is_object()) {
    if (err != nullptr) *err = "response is not a JSON object";
    return false;
  }
  const JsonValue* proto = v.find("proto");
  const JsonValue* version = v.find("version");
  if (proto == nullptr || proto->as_string() != kProtoName ||
      version == nullptr ||
      static_cast<int>(version->as_number()) != kProtoVersion) {
    if (err != nullptr) *err = "not a syndcim-serve v1 response";
    return false;
  }
  ClientResponse resp;
  resp.raw = line;
  if (const JsonValue* id = v.find("id")) resp.id = id->as_kv_string();
  const JsonValue* status = v.find("status");
  if (status == nullptr || !status->is_string()) {
    if (err != nullptr) *err = "response has no 'status'";
    return false;
  }
  if (status->as_string() == "ok") {
    resp.ok = true;
    if (const JsonValue* result = v.find("result")) resp.result = *result;
  } else {
    resp.ok = false;
    if (const JsonValue* e = v.find("error")) {
      if (const JsonValue* code = e->find("code")) {
        resp.code = static_cast<int>(code->as_number());
      }
      if (const JsonValue* reason = e->find("reason")) {
        resp.reason = reason->as_string();
      }
    }
  }
  *out = std::move(resp);
  return true;
}

bool Client::connect(const std::string& host, int port, std::string* err) {
  close();
  fd_ = connect_fd(host, port, err);
  return fd_ >= 0;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

bool Client::send_all(const std::string& data, std::string* err) {
  return send_all_fd(fd_, data, err);
}

bool Client::read_line(std::string* line, std::string* err) {
  char chunk[4096];
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (err != nullptr) {
      *err = n == 0 ? "connection closed by daemon"
                    : std::string("recv: ") + std::strerror(errno);
    }
    return false;
  }
}

bool Client::call_raw(const std::string& request_line, ClientResponse* out,
                      std::string* err) {
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  if (!send_all(request_line + "\n", err)) return false;
  std::string line;
  if (!read_line(&line, err)) return false;
  return parse_response(line, out, err);
}

bool Client::call(const std::string& method,
                  const std::map<std::string, std::string>& params,
                  double deadline_ms, ClientResponse* out, std::string* err) {
  return call_extra(method, params, std::string(), std::string(), deadline_ms,
                    out, err);
}

bool Client::call_extra(const std::string& method,
                        const std::map<std::string, std::string>& params,
                        const std::string& extra_key,
                        const std::string& extra_string_value,
                        double deadline_ms, ClientResponse* out,
                        std::string* err) {
  return call_raw(build_request(next_id_++, method, params, extra_key,
                                extra_string_value, deadline_ms),
                  out, err);
}

MultiplexClient::~MultiplexClient() { close(); }

bool MultiplexClient::connect(const std::string& host, int port,
                              std::string* err) {
  close();
  fd_ = connect_fd(host, port, err);
  if (fd_ < 0) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dead_ = false;
    dead_reason_.clear();
    done_.clear();
  }
  reader_ = std::thread([this] { reader_loop(); });
  return true;
}

void MultiplexClient::close() {
  if (fd_ >= 0) {
    // Wake the reader (recv returns 0/err), then join before the fd goes
    // away under it.
    ::shutdown(fd_, SHUT_RDWR);
  }
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void MultiplexClient::reader_loop() {
  std::string buf;
  char chunk[4096];
  std::string reason = "connection closed by daemon";
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = buf.find('\n')) != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        ClientResponse resp;
        std::string perr;
        if (!parse_response(line, &resp, &perr)) continue;  // not protocol
        std::lock_guard<std::mutex> lock(mu_);
        done_[resp.id].push_back(std::move(resp));
        cv_.notify_all();
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) reason = std::string("recv: ") + std::strerror(errno);
    break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = true;
  dead_reason_ = reason;
  cv_.notify_all();
}

std::string MultiplexClient::send(
    const std::string& method,
    const std::map<std::string, std::string>& params,
    const std::string& extra_key, const std::string& extra_string_value,
    double deadline_ms, std::string* err) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return "";
  }
  const int id = next_id_++;
  const std::string line = build_request(id, method, params, extra_key,
                                         extra_string_value, deadline_ms);
  if (!send_all_fd(fd_, line + "\n", err)) return "";
  return std::to_string(id);
}

bool MultiplexClient::wait(const std::string& id, ClientResponse* out,
                           std::string* err) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    const auto it = done_.find(id);
    return (it != done_.end() && !it->second.empty()) || dead_;
  });
  const auto it = done_.find(id);
  if (it != done_.end() && !it->second.empty()) {
    *out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) done_.erase(it);
    return true;
  }
  if (err != nullptr) *err = dead_reason_;
  return false;
}

}  // namespace syndcim::serve

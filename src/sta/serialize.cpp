#include "sta/serialize.hpp"

#include "core/binio.hpp"

namespace syndcim::sta {

using core::BinDecodeError;
using core::BinReader;
using core::BinWriter;
using core::deep_str_bytes;
using core::deep_vec_bytes;

namespace {

constexpr std::uint8_t kWireVersion = 1;
constexpr std::uint8_t kTimingVersion = 1;

void encode_arcs(BinWriter& w, const std::vector<BoundaryArc>& arcs) {
  w.u32(static_cast<std::uint32_t>(arcs.size()));
  for (const BoundaryArc& a : arcs) {
    w.str(a.net);
    w.f64(a.arrival_ps);
    w.f64(a.slew_ps);
  }
}

std::vector<BoundaryArc> decode_arcs(BinReader& r) {
  const std::uint32_t n = r.len(20);
  std::vector<BoundaryArc> arcs;
  arcs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    BoundaryArc a;
    a.net = r.str();
    a.arrival_ps = r.f64();
    a.slew_ps = r.f64();
    arcs.push_back(std::move(a));
  }
  return arcs;
}

}  // namespace

std::string encode_wire_model(const WireModel& wm) {
  BinWriter w;
  w.u8(kWireVersion);
  w.f64(wm.cap_per_fanout_ff);
  w.u32(static_cast<std::uint32_t>(wm.per_net_cap_ff.size()));
  for (const double c : wm.per_net_cap_ff) w.f64(c);
  return w.take();
}

WireModel decode_wire_model(std::string_view payload) {
  BinReader r(payload);
  if (r.u8() != kWireVersion) {
    throw BinDecodeError("unsupported codec version for wire model");
  }
  WireModel wm;
  wm.cap_per_fanout_ff = r.f64();
  const std::uint32_t n = r.len(8);
  wm.per_net_cap_ff.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) wm.per_net_cap_ff.push_back(r.f64());
  r.expect_end();
  return wm;
}

std::string encode_timing_report(const TimingReport& t) {
  BinWriter w;
  w.u8(kTimingVersion);
  w.f64(t.wns_ps);
  w.f64(t.tns_ps);
  w.f64(t.min_period_ps);
  w.f64(t.fmax_mhz);
  w.f64(t.min_write_period_ps);
  w.u32(static_cast<std::uint32_t>(t.groups.size()));
  for (const GroupSlack& g : t.groups) {
    w.str(g.group);
    w.f64(g.wns_ps);
    w.f64(g.worst_arrival_ps);
  }
  w.u32(static_cast<std::uint32_t>(t.interfaces.size()));
  for (const GroupInterface& gi : t.interfaces) {
    w.str(gi.group);
    encode_arcs(w, gi.inputs);
    encode_arcs(w, gi.outputs);
  }
  w.f64(t.critical.arrival_ps);
  w.f64(t.critical.required_ps);
  w.str(t.critical.endpoint);
  w.u32(static_cast<std::uint32_t>(t.critical.stages.size()));
  for (const PathStage& s : t.critical.stages) {
    w.str(s.master);
    w.str(s.group);
    w.f64(s.arrival_ps);
  }
  return w.take();
}

TimingReport decode_timing_report(std::string_view payload) {
  BinReader r(payload);
  if (r.u8() != kTimingVersion) {
    throw BinDecodeError("unsupported codec version for timing report");
  }
  TimingReport t;
  t.wns_ps = r.f64();
  t.tns_ps = r.f64();
  t.min_period_ps = r.f64();
  t.fmax_mhz = r.f64();
  t.min_write_period_ps = r.f64();
  const std::uint32_t n_groups = r.len(20);
  t.groups.reserve(n_groups);
  for (std::uint32_t i = 0; i < n_groups; ++i) {
    GroupSlack g;
    g.group = r.str();
    g.wns_ps = r.f64();
    g.worst_arrival_ps = r.f64();
    t.groups.push_back(std::move(g));
  }
  const std::uint32_t n_ifaces = r.len(12);
  t.interfaces.reserve(n_ifaces);
  for (std::uint32_t i = 0; i < n_ifaces; ++i) {
    GroupInterface gi;
    gi.group = r.str();
    gi.inputs = decode_arcs(r);
    gi.outputs = decode_arcs(r);
    t.interfaces.push_back(std::move(gi));
  }
  t.critical.arrival_ps = r.f64();
  t.critical.required_ps = r.f64();
  t.critical.endpoint = r.str();
  const std::uint32_t n_stages = r.len(16);
  t.critical.stages.reserve(n_stages);
  for (std::uint32_t i = 0; i < n_stages; ++i) {
    PathStage s;
    s.master = r.str();
    s.group = r.str();
    s.arrival_ps = r.f64();
    t.critical.stages.push_back(std::move(s));
  }
  r.expect_end();
  return t;
}

std::size_t deep_bytes(const WireModel& w) {
  return deep_vec_bytes(w.per_net_cap_ff);
}

std::size_t deep_bytes(const TimingReport& t) {
  std::size_t n = deep_vec_bytes(t.groups) + deep_vec_bytes(t.interfaces) +
                  deep_vec_bytes(t.critical.stages) +
                  deep_str_bytes(t.critical.endpoint);
  for (const GroupSlack& g : t.groups) n += deep_str_bytes(g.group);
  for (const GroupInterface& gi : t.interfaces) {
    n += deep_str_bytes(gi.group) + deep_vec_bytes(gi.inputs) +
         deep_vec_bytes(gi.outputs);
    for (const BoundaryArc& a : gi.inputs) n += deep_str_bytes(a.net);
    for (const BoundaryArc& a : gi.outputs) n += deep_str_bytes(a.net);
  }
  for (const PathStage& s : t.critical.stages) {
    n += deep_str_bytes(s.master) + deep_str_bytes(s.group);
  }
  return n;
}

}  // namespace syndcim::sta

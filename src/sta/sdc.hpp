#pragma once
#include <iosfwd>

#include "sta/sta.hpp"

namespace syndcim::sta {

/// Emits the timing constraints of an analysis setup as an SDC script —
/// the "circuit constraints" output of Algorithm 1: MAC clock, the
/// weight-update clock as a second (exclusive) clock on the same port,
/// case analysis on the static configuration inputs, the input/output
/// budgets and the max-transition design rule.
void write_sdc(const StaOptions& opt, std::ostream& os);

}  // namespace syndcim::sta

#include "sta/sta.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "netlist/levelize.hpp"
#include "obs/obs.hpp"

namespace syndcim::sta {

using netlist::FlatNetlist;
using netlist::NetConst;

namespace {
constexpr std::uint32_t kNoNet = UINT32_MAX;
constexpr double kStorageQSlewPs = 80.0;  // weak bitcell read transition
constexpr double kClockSlewPs = 40.0;
}  // namespace

double TimingReport::group_wns(std::string_view g) const {
  for (const GroupSlack& gs : groups) {
    if (gs.group == g) return gs.wns_ps;
  }
  return std::numeric_limits<double>::infinity();
}

StaEngine::StaEngine(const FlatNetlist& nl, const cell::Library& lib)
    : nl_(nl), lib_(lib) {
  const auto& flat_gates = nl.gates();
  gates_.reserve(flat_gates.size());

  // Resolve masters and pin name ids once.
  std::vector<const cell::Cell*> master_cells;
  master_cells.reserve(nl.master_names().size());
  for (const std::string& m : nl.master_names()) {
    master_cells.push_back(&lib.get(m));
  }
  // pin name id -> string (interned); resolved per (cell, pin id) lazily.
  const auto& pin_names = nl.pin_names();

  pin_cap_sum_.assign(nl.net_count(), 0.0);
  fanout_.assign(nl.net_count(), 0);
  driver_gate_.assign(nl.net_count(), -1);
  driver_pin_.assign(nl.net_count(), -1);

  for (const auto& fg : flat_gates) {
    GateInfo gi;
    gi.cell = master_cells[fg.master];
    gi.group = fg.group;
    gi.pin_nets.assign(gi.cell->pins.size(), kNoNet);
    for (const auto& pc : fg.pins) {
      const int pi = gi.cell->pin_index(pin_names[pc.pin_name]);
      if (pi < 0) {
        throw std::invalid_argument("StaEngine: cell " + gi.cell->name +
                                    " has no pin " + pin_names[pc.pin_name]);
      }
      gi.pin_nets[static_cast<std::size_t>(pi)] = pc.net;
    }
    const std::uint32_t g = static_cast<std::uint32_t>(gates_.size());
    for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
      const std::uint32_t net = gi.pin_nets[pi];
      if (net == kNoNet) {
        if (gi.cell->pins[pi].is_input) {
          throw std::invalid_argument("StaEngine: unconnected input pin " +
                                      gi.cell->pins[pi].name + " on " +
                                      gi.cell->name);
        }
        continue;
      }
      if (gi.cell->pins[pi].is_input) {
        pin_cap_sum_[net] += gi.cell->pins[pi].cap_ff;
        ++fanout_[net];
      } else {
        if (driver_gate_[net] >= 0) {
          throw std::invalid_argument("StaEngine: net has multiple drivers");
        }
        if (nl.net_const(net) != NetConst::kNone) {
          throw std::invalid_argument("StaEngine: gate drives constant net");
        }
        driver_gate_[net] = static_cast<std::int32_t>(g);
        driver_pin_[net] = static_cast<std::int8_t>(pi);
      }
    }
    gates_.push_back(std::move(gi));
  }
  for (const auto& io : nl.primary_inputs()) {
    if (driver_gate_[io.net] >= 0) {
      throw std::invalid_argument("StaEngine: primary input " + io.name +
                                  " also driven by a gate");
    }
  }

  // Levelize combinational gates with the shared netlist helper (one
  // levelization scheme and one comb-loop check for STA and both
  // simulators).
  std::vector<netlist::LevelizeGate> lv(gates_.size());
  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    const GateInfo& gi = gates_[g];
    lv[g].combinational =
        gi.cell->timing_role() == cell::TimingRole::kCombinational;
    if (!lv[g].combinational) continue;
    for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
      (gi.cell->pins[pi].is_input ? lv[g].in_nets : lv[g].out_nets)
          .push_back(gi.pin_nets[pi]);
    }
  }
  gate_order_ = netlist::levelize(nl, lv, "StaEngine");
}

double StaEngine::net_load_ff(std::uint32_t net, const WireModel& wire) const {
  return pin_cap_sum_[net] + wire.net_cap(net, fanout_[net]);
}

double VariationReport::yield_at(double freq_mhz) const {
  if (fmax_samples_mhz.empty()) return 0.0;
  std::size_t ok = 0;
  for (const double f : fmax_samples_mhz) ok += f >= freq_mhz ? 1 : 0;
  return static_cast<double>(ok) / fmax_samples_mhz.size();
}

TimingReport StaEngine::analyze(const StaOptions& opt) const {
  if (opt.diag) {
    // Constraint sanity: a static_inputs name matching no primary input
    // is almost always a typo, and the path it was meant to exclude
    // silently stays in the timing graph.
    for (const std::string& name : opt.static_inputs) {
      bool found = false;
      for (const auto& io : nl_.primary_inputs()) {
        if (io.name == name) {
          found = true;
          break;
        }
      }
      if (!found) {
        opt.diag->warning("STA-UNKNOWN-INPUT",
                          "static_inputs name matches no primary input",
                          name, "sta");
      }
    }
  }
  return analyze_impl(opt, nullptr);
}

VariationReport StaEngine::analyze_variation(const StaOptions& opt,
                                             double delay_sigma,
                                             double global_sigma,
                                             int samples,
                                             unsigned seed) const {
  if (samples < 1 || delay_sigma < 0 || global_sigma < 0) {
    throw std::invalid_argument("analyze_variation: bad parameters");
  }
  std::mt19937 rng(seed);
  std::normal_distribution<double> n01;
  VariationReport rep;
  rep.fmax_samples_mhz.reserve(static_cast<std::size_t>(samples));
  std::vector<float> derate(gates_.size());
  for (int s = 0; s < samples; ++s) {
    // Global corner shift shared by the die, plus independent local
    // variation per gate (lognormal keeps derates positive).
    const double global = std::exp(global_sigma * n01(rng));
    for (float& d : derate) {
      d = static_cast<float>(global * std::exp(delay_sigma * n01(rng)));
    }
    rep.fmax_samples_mhz.push_back(
        analyze_impl(opt, derate.data()).fmax_mhz);
  }
  double sum = 0, sq = 0;
  for (const double f : rep.fmax_samples_mhz) {
    sum += f;
    sq += f * f;
  }
  rep.mean_fmax_mhz = sum / samples;
  rep.sigma_fmax_mhz = std::sqrt(
      std::max(0.0, sq / samples - rep.mean_fmax_mhz * rep.mean_fmax_mhz));
  return rep;
}

TimingReport StaEngine::analyze_impl(const StaOptions& opt,
                                     const float* gate_derate) const {
  OBS_SPAN("sta.analyze");
  const tech::TechNode& node = lib_.node();
  if (!node.vdd_in_range(opt.vdd)) {
    throw std::invalid_argument("StaEngine::analyze: vdd out of range");
  }
  // Voltage/temperature scaling: propagate in the nominal domain (delays
  // AND slews scale together, so relative waveforms are invariant) and
  // scale the reported times at the end. Equivalently, clock periods
  // shrink by 1/ds during analysis.
  const double ds = node.delay_scale(opt.vdd, opt.temp_c);

  const std::size_t nnets = nl_.net_count();
  std::vector<double> at(nnets, -std::numeric_limits<double>::infinity());
  std::vector<double> slew(nnets, opt.input_slew_ps);
  // Traceback: previous net and gate on the worst path into each net.
  std::vector<std::uint32_t> prev_net(nnets, kNoNet);
  std::vector<std::int32_t> via_gate(nnets, -1);

  for (std::uint32_t n = 0; n < nnets; ++n) {
    if (driver_gate_[n] < 0 || nl_.net_const(n) != NetConst::kNone) {
      at[n] = 0.0;  // dangling or constant
    }
  }
  for (const auto& io : nl_.primary_inputs()) {
    at[io.net] = opt.input_delay_ps;
    slew[io.net] = opt.input_slew_ps;
  }
  // Case analysis: static configuration inputs do not launch transitions.
  std::vector<std::uint8_t> untimed(nnets, 0);
  for (const std::string& name : opt.static_inputs) {
    for (const auto& io : nl_.primary_inputs()) {
      if (io.name == name) untimed[io.net] = 1;
    }
  }

  // Launch points: register CK->Q and storage Q.
  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    const GateInfo& gi = gates_[g];
    const cell::TimingRole role = gi.cell->timing_role();
    if (role == cell::TimingRole::kCombinational) continue;
    for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
      if (gi.cell->pins[pi].is_input) continue;
      const std::uint32_t qnet = gi.pin_nets[pi];
      if (qnet == kNoNet) continue;
      if (role == cell::TimingRole::kStorage) {
        at[qnet] = 0.0;
        slew[qnet] = kStorageQSlewPs;
        continue;
      }
      const double load = net_load_ff(qnet, opt.wire);
      double d = 0.0, s = kClockSlewPs;
      for (const auto& arc : gi.cell->arcs) {
        if (static_cast<std::size_t>(arc.to_pin) != pi) continue;
        d = std::max(d, arc.delay_ps.eval(kClockSlewPs, load));
        s = std::max(s, arc.out_slew_ps.eval(kClockSlewPs, load));
      }
      if (gate_derate) d *= gate_derate[g];
      at[qnet] = d;
      slew[qnet] = s;
      via_gate[qnet] = static_cast<std::int32_t>(g);
    }
  }

  // Propagate through levels.
  for (const auto& level : gate_order_) {
    for (const std::uint32_t g : level) {
      const GateInfo& gi = gates_[g];
      for (const auto& arc : gi.cell->arcs) {
        const std::uint32_t in_net =
            gi.pin_nets[static_cast<std::size_t>(arc.from_pin)];
        const std::uint32_t out_net =
            gi.pin_nets[static_cast<std::size_t>(arc.to_pin)];
        if (in_net == kNoNet || out_net == kNoNet) continue;
        if (nl_.net_const(in_net) != NetConst::kNone) continue;
        if (untimed[in_net]) continue;
        const double load = net_load_ff(out_net, opt.wire);
        double d = arc.delay_ps.eval(slew[in_net], load);
        if (gate_derate) d *= gate_derate[g];
        const double cand = at[in_net] + d;
        if (cand > at[out_net]) {
          at[out_net] = cand;
          slew[out_net] = std::min(
              arc.out_slew_ps.eval(slew[in_net], load), opt.max_slew_ps);
          prev_net[out_net] = in_net;
          via_gate[out_net] = static_cast<std::int32_t>(g);
        }
      }
    }
  }

  // Collect endpoints.
  struct Endpoint {
    std::uint32_t net;
    double arrival;
    double required;
    std::uint32_t group;
    std::string desc;
    bool write_domain = false;
  };
  std::vector<Endpoint> eps;
  double min_period = 0.0, min_write_period = 0.0;

  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    const GateInfo& gi = gates_[g];
    const cell::TimingRole role = gi.cell->timing_role();
    if (role == cell::TimingRole::kCombinational) continue;
    const bool write_domain = role == cell::TimingRole::kStorage;
    const double period =
        (write_domain ? opt.write_period_ps : opt.clock_period_ps) / ds;
    for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
      const cell::Pin& p = gi.cell->pins[pi];
      if (!p.is_input || p.is_clock) continue;
      const std::uint32_t net = gi.pin_nets[pi];
      if (nl_.net_const(net) != NetConst::kNone) continue;
      const double need = at[net] + gi.cell->setup_ps;
      (write_domain ? min_write_period : min_period) =
          std::max(write_domain ? min_write_period : min_period, need);
      eps.push_back({net, at[net], period - gi.cell->setup_ps, gi.group,
                     gi.cell->name + "/" + p.name, write_domain});
    }
  }
  for (const auto& io : nl_.primary_outputs()) {
    const double need = at[io.net] + opt.output_margin_ps;
    min_period = std::max(min_period, need);
    eps.push_back({io.net, at[io.net],
                   opt.clock_period_ps / ds - opt.output_margin_ps, 0,
                   "<out>/" + io.name});
  }

  TimingReport rep;
  rep.min_period_ps = min_period * ds;
  rep.min_write_period_ps = min_write_period * ds;
  rep.fmax_mhz = min_period > 0 ? 1.0e6 / rep.min_period_ps : 0.0;

  rep.wns_ps = std::numeric_limits<double>::infinity();
  const Endpoint* worst = nullptr;
  std::vector<GroupSlack> groups(nl_.group_names().size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    groups[i].group = nl_.group_names()[i];
  }
  for (const Endpoint& e : eps) {
    const double slack = (e.required - e.arrival) * ds;
    if (slack < rep.wns_ps) {
      rep.wns_ps = slack;
      worst = &e;
    }
    if (slack < 0) rep.tns_ps += slack;
    // Group slacks classify MAC-domain endpoints only; the write domain is
    // summarized by min_write_period_ps.
    if (e.write_domain) continue;
    GroupSlack& gs = groups[e.group];
    if (slack < gs.wns_ps) {
      gs.wns_ps = slack;
      gs.worst_arrival_ps = e.arrival * ds;
    }
  }
  if (eps.empty()) rep.wns_ps = std::numeric_limits<double>::infinity();
  for (GroupSlack& gs : groups) {
    if (std::isfinite(gs.wns_ps)) rep.groups.push_back(std::move(gs));
  }

  if (opt.collect_group_interfaces) {
    const auto& gnames = nl_.group_names();
    // Driver group per net (UINT32_MAX: PI, constant, or dangling).
    std::vector<std::uint32_t> dgroup(nnets, kNoNet);
    for (std::uint32_t n = 0; n < nnets; ++n) {
      if (driver_gate_[n] >= 0) {
        dgroup[n] = gates_[static_cast<std::size_t>(driver_gate_[n])].group;
      }
    }
    // A net leaves its driver's group if any other group consumes it or it
    // is a primary output.
    std::vector<std::uint8_t> crosses(nnets, 0);
    for (const GateInfo& gi : gates_) {
      for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
        if (!gi.cell->pins[pi].is_input) continue;
        const std::uint32_t n = gi.pin_nets[pi];
        if (n != kNoNet && dgroup[n] != gi.group) crosses[n] = 1;
      }
    }
    for (const auto& io : nl_.primary_outputs()) crosses[io.net] = 1;

    rep.interfaces.resize(gnames.size());
    for (std::size_t i = 0; i < gnames.size(); ++i) {
      rep.interfaces[i].group = gnames[i];
    }
    // First-use dedup: a net is listed once per group per direction.
    std::vector<std::uint32_t> in_stamp(nnets, kNoNet);
    std::vector<std::uint32_t> out_stamp(nnets, kNoNet);
    for (const GateInfo& gi : gates_) {
      GroupInterface& gif = rep.interfaces[gi.group];
      for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
        const std::uint32_t n = gi.pin_nets[pi];
        if (n == kNoNet || nl_.net_const(n) != NetConst::kNone) continue;
        if (gi.cell->pins[pi].is_input) {
          if (dgroup[n] == gi.group || in_stamp[n] == gi.group) continue;
          in_stamp[n] = gi.group;
          gif.inputs.push_back({nl_.net_name(n), at[n] * ds, slew[n] * ds});
        } else {
          if (!crosses[n] || out_stamp[n] == gi.group) continue;
          out_stamp[n] = gi.group;
          gif.outputs.push_back({nl_.net_name(n), at[n] * ds, slew[n] * ds});
        }
      }
    }
  }

  if (obs::enabled()) {
    // One timed path per setup endpoint in this analysis pass.
    obs::metrics().counter("sta.paths.timed").inc(eps.size());
    obs::metrics().counter("sta.analyze.runs").inc();
  }

  if (worst != nullptr) {
    rep.critical.arrival_ps = worst->arrival * ds;
    rep.critical.required_ps = worst->required * ds;
    rep.critical.endpoint = worst->desc;
    // Trace back the worst path.
    std::uint32_t n = worst->net;
    int guard = 0;
    while (n != kNoNet && guard++ < 4096) {
      PathStage st;
      st.arrival_ps = at[n] * ds;
      if (via_gate[n] >= 0) {
        const GateInfo& gi = gates_[static_cast<std::size_t>(via_gate[n])];
        st.master = gi.cell->name;
        st.group = nl_.group_names()[gi.group];
      } else {
        st.master = "<source>";
        st.group = "";
      }
      rep.critical.stages.push_back(std::move(st));
      n = prev_net[n];
    }
    std::reverse(rep.critical.stages.begin(), rep.critical.stages.end());
  }
  return rep;
}

}  // namespace syndcim::sta

#include "sta/sta.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <stdexcept>
#include <type_traits>

#include "netlist/levelize.hpp"
#include "obs/obs.hpp"

namespace syndcim::sta {

using netlist::FlatNetlist;
using netlist::NetConst;

namespace {
constexpr std::uint32_t kNoNet = UINT32_MAX;
constexpr double kStorageQSlewPs = 80.0;  // weak bitcell read transition
constexpr double kClockSlewPs = 40.0;

/// Collapsed rows are stored with at least two entries so the kernel can
/// unconditionally blend row[i] and row[i+1] (a single-point slew axis
/// duplicates its value; lut_lerp(v, v, 0) == v bit for bit).
std::size_t row_stride(const cell::Lut2d& lut) {
  return std::max<std::size_t>(2, lut.slew_axis().size());
}

/// Same segment Lut2d::locate computes (upper_bound semantics, clamped
/// ends, identical FP expression for t), over a flat axis slice. The
/// linear scan beats a binary search on the short characterization grids
/// and keeps the whole lookup inlined in the kernel loop.
inline cell::LutSeg locate_axis(const double* ax, std::uint32_t n,
                                double x) {
  if (n == 1 || x <= ax[0]) return {0, 0.0};
  if (x >= ax[n - 1]) return {n - 2, 1.0};
  std::size_t hi = 1;
  while (ax[hi] <= x) ++hi;
  const std::size_t lo = hi - 1;
  const double span = ax[hi] - ax[lo];
  return {lo, span > 0 ? (x - ax[lo]) / span : 0.0};
}
}  // namespace

double TimingReport::group_wns(std::string_view g) const {
  for (const GroupSlack& gs : groups) {
    if (gs.group == g) return gs.wns_ps;
  }
  return std::numeric_limits<double>::infinity();
}

StaEngine::StaEngine(const FlatNetlist& nl, const cell::Library& lib)
    : nl_(nl), lib_(lib) {
  const auto& flat_gates = nl.gates();
  gates_.reserve(flat_gates.size());

  // Resolve masters and pin name ids once.
  std::vector<const cell::Cell*> master_cells;
  master_cells.reserve(nl.master_names().size());
  for (const std::string& m : nl.master_names()) {
    master_cells.push_back(&lib.get(m));
  }
  // pin name id -> string (interned); resolved per (cell, pin id) lazily.
  const auto& pin_names = nl.pin_names();

  const std::size_t nnets = nl.net_count();
  pin_cap_sum_.assign(nnets, 0.0);
  fanout_.assign(nnets, 0);
  driver_gate_.assign(nnets, -1);
  driver_pin_.assign(nnets, -1);

  for (const auto& fg : flat_gates) {
    GateInfo gi;
    gi.cell = master_cells[fg.master];
    gi.group = fg.group;
    gi.pin_nets.assign(gi.cell->pins.size(), kNoNet);
    for (const auto& pc : fg.pins) {
      const int pi = gi.cell->pin_index(pin_names[pc.pin_name]);
      if (pi < 0) {
        throw std::invalid_argument("StaEngine: cell " + gi.cell->name +
                                    " has no pin " + pin_names[pc.pin_name]);
      }
      gi.pin_nets[static_cast<std::size_t>(pi)] = pc.net;
    }
    const std::uint32_t g = static_cast<std::uint32_t>(gates_.size());
    for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
      const std::uint32_t net = gi.pin_nets[pi];
      if (net == kNoNet) {
        if (gi.cell->pins[pi].is_input) {
          throw std::invalid_argument("StaEngine: unconnected input pin " +
                                      gi.cell->pins[pi].name + " on " +
                                      gi.cell->name);
        }
        continue;
      }
      if (gi.cell->pins[pi].is_input) {
        pin_cap_sum_[net] += gi.cell->pins[pi].cap_ff;
        ++fanout_[net];
      } else {
        if (driver_gate_[net] >= 0) {
          throw std::invalid_argument("StaEngine: net has multiple drivers");
        }
        if (nl.net_const(net) != NetConst::kNone) {
          throw std::invalid_argument("StaEngine: gate drives constant net");
        }
        driver_gate_[net] = static_cast<std::int32_t>(g);
        driver_pin_[net] = static_cast<std::int8_t>(pi);
      }
    }
    gates_.push_back(std::move(gi));
  }
  for (const auto& io : nl.primary_inputs()) {
    if (driver_gate_[io.net] >= 0) {
      throw std::invalid_argument("StaEngine: primary input " + io.name +
                                  " also driven by a gate");
    }
  }

  // Levelize combinational gates with the shared netlist helper (one
  // levelization scheme and one comb-loop check for STA and both
  // simulators).
  std::vector<netlist::LevelizeGate> lv(gates_.size());
  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    const GateInfo& gi = gates_[g];
    lv[g].combinational =
        gi.cell->timing_role() == cell::TimingRole::kCombinational;
    if (!lv[g].combinational) continue;
    for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
      (gi.cell->pins[pi].is_input ? lv[g].in_nets : lv[g].out_nets)
          .push_back(gi.pin_nets[pi]);
    }
  }
  gate_order_ = netlist::levelize(nl, lv, "StaEngine");

  net_const_.assign(nnets, 0);
  for (std::uint32_t n = 0; n < nnets; ++n) {
    net_const_[n] = nl.net_const(n) != NetConst::kNone ? 1 : 0;
  }

  // Flatten the timing arcs into a CSR in the exact (level, gate, arc)
  // order the scalar arm visits them, so both kernels accumulate their
  // max() reductions in the same order and stay bit-identical.
  level_arc_begin_.push_back(0);
  level_net_begin_.push_back(0);
  std::vector<std::uint8_t> seen(nnets, 0);  // one driver => one level
  // Dedup slew axes into one flat table (the library shares a handful of
  // characterization grids, so this stays L1-resident in the kernel).
  std::map<std::vector<double>, std::uint16_t> axis_ids;
  const auto axis_id = [&](const std::vector<double>& axis) {
    const auto it = axis_ids.find(axis);
    if (it != axis_ids.end()) return it->second;
    const auto id = static_cast<std::uint16_t>(ax_off_.size());
    ax_off_.push_back(static_cast<std::uint32_t>(ax_vals_.size()));
    ax_len_.push_back(static_cast<std::uint32_t>(axis.size()));
    ax_vals_.insert(ax_vals_.end(), axis.begin(), axis.end());
    axis_ids.emplace(axis, id);
    return id;
  };
  for (const auto& level : gate_order_) {
    for (const std::uint32_t g : level) {
      const GateInfo& gi = gates_[g];
      for (const auto& arc : gi.cell->arcs) {
        const std::uint32_t in_net =
            gi.pin_nets[static_cast<std::size_t>(arc.from_pin)];
        const std::uint32_t out_net =
            gi.pin_nets[static_cast<std::size_t>(arc.to_pin)];
        if (in_net == kNoNet || out_net == kNoNet) continue;
        // Arcs from constant nets can never fire (the scalar arm skips
        // them on every visit); dropping them here removes the per-arc
        // net_const_ test from the kernel. Their out_nets still join
        // level_out_nets_ below so case-analysis marking is unchanged.
        if (!net_const_[in_net]) {
          arc_in_.push_back(in_net);
          arc_out_.push_back(out_net);
          arc_gate_.push_back(g);
          arc_delay_.push_back(&arc.delay_ps);
          arc_oslew_.push_back(&arc.out_slew_ps);
          arc_axis_shared_.push_back(
              arc.delay_ps.slew_axis() == arc.out_slew_ps.slew_axis() ? 1
                                                                      : 0);
          arc_dax_.push_back(axis_id(arc.delay_ps.slew_axis()));
          arc_sax_.push_back(axis_id(arc.out_slew_ps.slew_axis()));
        }
        if (!seen[out_net]) {
          seen[out_net] = 1;
          level_out_nets_.push_back(out_net);
        }
      }
    }
    level_arc_begin_.push_back(static_cast<std::uint32_t>(arc_in_.size()));
    level_net_begin_.push_back(
        static_cast<std::uint32_t>(level_out_nets_.size()));
  }

  // Launch points and setup endpoints, resolved once so per-analysis work
  // never touches pin names or roles.
  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    const GateInfo& gi = gates_[g];
    const cell::TimingRole role = gi.cell->timing_role();
    if (role == cell::TimingRole::kCombinational) continue;
    const bool storage = role == cell::TimingRole::kStorage;
    for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
      const cell::Pin& p = gi.cell->pins[pi];
      const std::uint32_t net = gi.pin_nets[pi];
      if (net == kNoNet) continue;
      if (!p.is_input) {
        launches_.push_back({g, net, static_cast<std::uint16_t>(pi), storage});
      } else if (!p.is_clock && !net_const_[net]) {
        setup_eps_.push_back({net, g, gi.group, static_cast<std::uint16_t>(pi),
                              storage, gi.cell->setup_ps});
      }
    }
  }

  // Structural group-interface membership (driver group, crossing nets,
  // first-use dedup) — the per-analysis pass only annotates at/slew.
  const std::size_t ngroups = nl.group_names().size();
  std::vector<std::uint32_t> dgroup(nnets, kNoNet);
  for (std::uint32_t n = 0; n < nnets; ++n) {
    if (driver_gate_[n] >= 0) {
      dgroup[n] = gates_[static_cast<std::size_t>(driver_gate_[n])].group;
    }
  }
  // A net leaves its driver's group if any other group consumes it or it
  // is a primary output.
  std::vector<std::uint8_t> crosses(nnets, 0);
  for (const GateInfo& gi : gates_) {
    for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
      if (!gi.cell->pins[pi].is_input) continue;
      const std::uint32_t n = gi.pin_nets[pi];
      if (n != kNoNet && dgroup[n] != gi.group) crosses[n] = 1;
    }
  }
  for (const auto& io : nl.primary_outputs()) crosses[io.net] = 1;

  iface_in_.resize(ngroups);
  iface_out_.resize(ngroups);
  // First-use dedup: a net is listed once per group per direction.
  std::vector<std::uint32_t> in_stamp(nnets, kNoNet);
  std::vector<std::uint32_t> out_stamp(nnets, kNoNet);
  for (const GateInfo& gi : gates_) {
    for (std::size_t pi = 0; pi < gi.cell->pins.size(); ++pi) {
      const std::uint32_t n = gi.pin_nets[pi];
      if (n == kNoNet || net_const_[n]) continue;
      if (gi.cell->pins[pi].is_input) {
        if (dgroup[n] == gi.group || in_stamp[n] == gi.group) continue;
        in_stamp[n] = gi.group;
        iface_in_[gi.group].push_back(n);
      } else {
        if (!crosses[n] || out_stamp[n] == gi.group) continue;
        out_stamp[n] = gi.group;
        iface_out_[gi.group].push_back(n);
      }
    }
  }
}

double StaEngine::net_load_ff(std::uint32_t net, const WireModel& wire) const {
  return pin_cap_sum_[net] + wire.net_cap(net, fanout_[net]);
}

std::shared_ptr<const StaEngine::LoadPlan> StaEngine::load_plan(
    const WireModel& wire) const {
  {
    std::lock_guard<std::mutex> lk(plan_mu_);
    if (plan_ && plan_->wire.cap_per_fanout_ff == wire.cap_per_fanout_ff &&
        plan_->wire.per_net_cap_ff == wire.per_net_cap_ff) {
      return plan_;
    }
  }
  OBS_SPAN("sta.load_plan");
  auto p = std::make_shared<LoadPlan>();
  p->wire = wire;
  const std::size_t nnets = nl_.net_count();
  p->net_load.resize(nnets);
  for (std::uint32_t n = 0; n < nnets; ++n) {
    p->net_load[n] = net_load_ff(n, wire);
  }
  // Collapse each (LUT, load) pair once: the library has a few dozen
  // distinct LUTs and the load values quantize heavily, so the shared
  // rows fit in cache where one private row pair per arc would not.
  std::map<std::pair<const cell::Lut2d*, double>, std::uint32_t> row_ids;
  const auto row_id = [&](const cell::Lut2d* lut, double load) {
    const auto key = std::make_pair(lut, load);
    const auto it = row_ids.find(key);
    if (it != row_ids.end()) return it->second;
    const auto off = static_cast<std::uint32_t>(p->rows.size());
    p->rows.resize(p->rows.size() + row_stride(*lut));
    double* r = &p->rows[off];
    lut->collapse_load(load, r);
    if (lut->slew_axis().size() == 1) r[1] = r[0];
    row_ids.emplace(key, off);
    return off;
  };
  p->arc_drow.resize(arc_in_.size());
  p->arc_srow.resize(arc_in_.size());
  for (std::size_t a = 0; a < arc_in_.size(); ++a) {
    const double load = p->net_load[arc_out_[a]];
    p->arc_drow[a] = row_id(arc_delay_[a], load);
    p->arc_srow[a] = row_id(arc_oslew_[a], load);
  }
  p->launch_delay.resize(launches_.size());
  p->launch_slew.resize(launches_.size());
  for (std::size_t i = 0; i < launches_.size(); ++i) {
    const LaunchPoint& lp = launches_[i];
    if (lp.storage) {
      p->launch_delay[i] = 0.0;
      p->launch_slew[i] = kStorageQSlewPs;
      continue;
    }
    const GateInfo& gi = gates_[lp.gate];
    const double load = p->net_load[lp.qnet];
    double d = 0.0, s = kClockSlewPs;
    for (const auto& arc : gi.cell->arcs) {
      if (arc.to_pin != lp.pin) continue;
      d = std::max(d, arc.delay_ps.eval(kClockSlewPs, load));
      s = std::max(s, arc.out_slew_ps.eval(kClockSlewPs, load));
    }
    p->launch_delay[i] = d;
    p->launch_slew[i] = s;
  }
  if (obs::enabled()) obs::metrics().counter("sta.plan.builds").inc();
  std::lock_guard<std::mutex> lk(plan_mu_);
  plan_ = p;
  return p;
}

double VariationReport::yield_at(double freq_mhz) const {
  if (fmax_samples_mhz.empty()) return 0.0;
  std::size_t ok = 0;
  for (const double f : fmax_samples_mhz) ok += f >= freq_mhz ? 1 : 0;
  return static_cast<double>(ok) / fmax_samples_mhz.size();
}

TimingReport StaEngine::analyze(const StaOptions& opt) const {
  if (opt.diag) {
    // Constraint sanity: a static_inputs name matching no primary input
    // is almost always a typo, and the path it was meant to exclude
    // silently stays in the timing graph.
    for (const std::string& name : opt.static_inputs) {
      bool found = false;
      for (const auto& io : nl_.primary_inputs()) {
        if (io.name == name) {
          found = true;
          break;
        }
      }
      if (!found) {
        opt.diag->warning("STA-UNKNOWN-INPUT",
                          "static_inputs name matches no primary input",
                          name, "sta");
      }
    }
  }
  return analyze_impl(opt, nullptr);
}

VariationReport StaEngine::analyze_variation(const StaOptions& opt,
                                             double delay_sigma,
                                             double global_sigma,
                                             int samples,
                                             unsigned seed) const {
  if (samples < 1 || delay_sigma < 0 || global_sigma < 0) {
    throw std::invalid_argument("analyze_variation: bad parameters");
  }
  std::mt19937 rng(seed);
  std::normal_distribution<double> n01;
  VariationReport rep;
  rep.fmax_samples_mhz.reserve(static_cast<std::size_t>(samples));
  std::vector<float> derate(gates_.size());
  for (int s = 0; s < samples; ++s) {
    // Global corner shift shared by the die, plus independent local
    // variation per gate (lognormal keeps derates positive).
    const double global = std::exp(global_sigma * n01(rng));
    for (float& d : derate) {
      d = static_cast<float>(global * std::exp(delay_sigma * n01(rng)));
    }
    rep.fmax_samples_mhz.push_back(
        analyze_impl(opt, derate.data()).fmax_mhz);
  }
  double sum = 0, sq = 0;
  for (const double f : rep.fmax_samples_mhz) {
    sum += f;
    sq += f * f;
  }
  rep.mean_fmax_mhz = sum / samples;
  rep.sigma_fmax_mhz = std::sqrt(
      std::max(0.0, sq / samples - rep.mean_fmax_mhz * rep.mean_fmax_mhz));
  return rep;
}

void StaEngine::propagate_scalar(const StaOptions& opt,
                                 const float* gate_derate,
                                 PropState& ps) const {
  for (const auto& level : gate_order_) {
    for (const std::uint32_t g : level) {
      const GateInfo& gi = gates_[g];
      for (const auto& arc : gi.cell->arcs) {
        const std::uint32_t in_net =
            gi.pin_nets[static_cast<std::size_t>(arc.from_pin)];
        const std::uint32_t out_net =
            gi.pin_nets[static_cast<std::size_t>(arc.to_pin)];
        if (in_net == kNoNet || out_net == kNoNet) continue;
        if (net_const_[in_net] || ps.untimed[in_net]) continue;
        const double load = net_load_ff(out_net, opt.wire);
        double d = arc.delay_ps.eval(ps.ts[in_net].slew, load);
        if (gate_derate) d *= gate_derate[g];
        const double cand = ps.ts[in_net].at + d;
        if (cand > ps.ts[out_net].at) {
          ps.ts[out_net].at = cand;
          ps.tr[out_net] = {in_net, static_cast<std::int32_t>(g)};
        }
        // Worst slew over all live arcs, independent of which arc wins
        // the arrival race: the slowest transition reaches the next stage
        // even when a faster path launches the winning edge.
        const double s =
            std::min(arc.out_slew_ps.eval(ps.ts[in_net].slew, load),
                     opt.max_slew_ps);
        if (!ps.slew_set[out_net]) {
          ps.ts[out_net].slew = s;
          ps.slew_set[out_net] = 1;
        } else if (s > ps.ts[out_net].slew) {
          ps.ts[out_net].slew = s;
        }
      }
      // Case analysis: an output none of whose arcs fired is untimed.
      for (const auto& arc : gi.cell->arcs) {
        const std::uint32_t in_net =
            gi.pin_nets[static_cast<std::size_t>(arc.from_pin)];
        const std::uint32_t out_net =
            gi.pin_nets[static_cast<std::size_t>(arc.to_pin)];
        if (in_net == kNoNet || out_net == kNoNet) continue;
        if (!ps.slew_set[out_net]) ps.untimed[out_net] = 1;
      }
    }
  }
}

void StaEngine::propagate_soa(const LoadPlan& plan, const StaOptions& opt,
                              const float* gate_derate, PropState& ps) const {
  const double* rows = plan.rows.data();
  const std::uint32_t* arc_drow = plan.arc_drow.data();
  const std::uint32_t* arc_srow = plan.arc_srow.data();
  const double* ax_vals = ax_vals_.data();
  const std::uint32_t* ax_off = ax_off_.data();
  const std::uint32_t* ax_len = ax_len_.data();
  const std::uint32_t* arc_in = arc_in_.data();
  const std::uint32_t* arc_out = arc_out_.data();
  const double max_slew = opt.max_slew_ps;
  const std::size_t nlevels = level_arc_begin_.size() - 1;
  // The derate test is hoisted out of the arc loop; the winner/worst-slew
  // updates are written as selects so the unpredictable comparisons
  // compile to cmovs instead of mispredicting branches. Both forms keep
  // the exact comparison semantics (strict > first-winner) of the scalar
  // arm, so results stay bit-identical.
  const auto level_arcs = [&](std::uint32_t abeg, std::uint32_t aend,
                              auto derated, auto one_axis) {
    for (std::uint32_t a = abeg; a < aend; ++a) {
      const std::uint32_t in_net = arc_in[a];
      // Const-input arcs were filtered out of the CSR at construction, so
      // case analysis is the only remaining dynamic skip.
      if (ps.untimed[in_net]) continue;
      const std::uint32_t out_net = arc_out[a];
      const PropState::NetTime in_ts = ps.ts[in_net];
      cell::LutSeg sd, ss;
      if constexpr (decltype(one_axis)::value) {
        // Whole-library shared slew grid: one hoisted axis, one locate
        // covering both the delay and slew rows of every arc.
        sd = locate_axis(ax_vals, ax_len[0], in_ts.slew);
        ss = sd;
      } else {
        const std::uint16_t dax = arc_dax_[a];
        sd = locate_axis(ax_vals + ax_off[dax], ax_len[dax], in_ts.slew);
        ss = sd;
        if (!arc_axis_shared_[a]) {
          const std::uint16_t sax = arc_sax_[a];
          ss = locate_axis(ax_vals + ax_off[sax], ax_len[sax], in_ts.slew);
        }
      }
      const double* dr = rows + arc_drow[a];
      double d = cell::lut_lerp(dr[sd.i], dr[sd.i + 1], sd.t);
      if constexpr (decltype(derated)::value) d *= gate_derate[arc_gate_[a]];
      const double cand = in_ts.at + d;
      PropState::NetTime& ot = ps.ts[out_net];
      PropState::Trace& otr = ps.tr[out_net];
      const bool win = cand > ot.at;
      ot.at = win ? cand : ot.at;
      otr.prev_net = win ? in_net : otr.prev_net;
      otr.via_gate =
          win ? static_cast<std::int32_t>(arc_gate_[a]) : otr.via_gate;
      const double* sr = rows + arc_srow[a];
      const double s =
          std::min(cell::lut_lerp(sr[ss.i], sr[ss.i + 1], ss.t), max_slew);
      const bool keep = ps.slew_set[out_net] && s <= ot.slew;
      ot.slew = keep ? ot.slew : s;
      ps.slew_set[out_net] = 1;
    }
  };
  const bool one_axis = ax_off_.size() == 1;
  for (std::size_t lvl = 0; lvl < nlevels; ++lvl) {
    const std::uint32_t abeg = level_arc_begin_[lvl];
    const std::uint32_t aend = level_arc_begin_[lvl + 1];
    if (gate_derate) {
      if (one_axis) {
        level_arcs(abeg, aend, std::true_type{}, std::true_type{});
      } else {
        level_arcs(abeg, aend, std::true_type{}, std::false_type{});
      }
    } else if (one_axis) {
      level_arcs(abeg, aend, std::false_type{}, std::true_type{});
    } else {
      level_arcs(abeg, aend, std::false_type{}, std::false_type{});
    }
    // Consumers of this level's outputs sit in strictly later levels, so
    // marking untimed nets once per level matches the scalar per-gate
    // marking exactly.
    const std::uint32_t nbeg = level_net_begin_[lvl];
    const std::uint32_t nend = level_net_begin_[lvl + 1];
    for (std::uint32_t i = nbeg; i < nend; ++i) {
      const std::uint32_t n = level_out_nets_[i];
      if (!ps.slew_set[n]) ps.untimed[n] = 1;
    }
  }
}

TimingReport StaEngine::analyze_impl(const StaOptions& opt,
                                     const float* gate_derate) const {
  OBS_SPAN("sta.analyze");
  const tech::TechNode& node = lib_.node();
  if (!node.vdd_in_range(opt.vdd)) {
    throw std::invalid_argument("StaEngine::analyze: vdd out of range");
  }
  // Voltage/temperature scaling: propagate in the nominal domain (delays
  // AND slews scale together, so relative waveforms are invariant) and
  // scale the reported times at the end. Equivalently, clock periods
  // shrink by 1/ds during analysis.
  const double ds = node.delay_scale(opt.vdd, opt.temp_c);

  const std::shared_ptr<const LoadPlan> plan = load_plan(opt.wire);

  const std::size_t nnets = nl_.net_count();
  PropState ps;
  ps.ts.assign(nnets, {-std::numeric_limits<double>::infinity(),
                       opt.input_slew_ps});
  // Traceback: previous net and gate on the worst path into each net.
  ps.tr.assign(nnets, {kNoNet, -1});
  ps.untimed.assign(nnets, 0);
  ps.slew_set.assign(nnets, 0);

  for (std::uint32_t n = 0; n < nnets; ++n) {
    if (driver_gate_[n] < 0 || net_const_[n]) {
      ps.ts[n].at = 0.0;  // dangling or constant
    }
  }
  for (const auto& io : nl_.primary_inputs()) {
    ps.ts[io.net] = {opt.input_delay_ps, opt.input_slew_ps};
  }
  // Case analysis: static configuration inputs do not launch transitions.
  for (const std::string& name : opt.static_inputs) {
    for (const auto& io : nl_.primary_inputs()) {
      if (io.name == name) ps.untimed[io.net] = 1;
    }
  }

  // Launch points: register CK->Q (precomputed at the fixed clock slew in
  // the plan) and storage Q at t=0.
  for (std::size_t i = 0; i < launches_.size(); ++i) {
    const LaunchPoint& lp = launches_[i];
    if (lp.storage) {
      ps.ts[lp.qnet] = {0.0, kStorageQSlewPs};
      continue;
    }
    double d = plan->launch_delay[i];
    if (gate_derate) d *= gate_derate[lp.gate];
    ps.ts[lp.qnet] = {d, plan->launch_slew[i]};
    ps.tr[lp.qnet].via_gate = static_cast<std::int32_t>(lp.gate);
  }

  // Propagate through levels.
  if (opt.kernel == StaKernel::kScalar) {
    propagate_scalar(opt, gate_derate, ps);
  } else {
    propagate_soa(*plan, opt, gate_derate, ps);
  }

  // Collect endpoints (streaming: no per-endpoint strings; the worst
  // endpoint's description is formatted once at the end).
  TimingReport rep;
  double min_period = 0.0, min_write_period = 0.0;
  rep.wns_ps = std::numeric_limits<double>::infinity();
  const SetupEndpoint* worst_sep = nullptr;
  const FlatNetlist::PrimaryIo* worst_po = nullptr;
  double worst_arrival = 0.0, worst_required = 0.0;
  std::uint32_t worst_net = kNoNet;
  std::size_t timed_eps = 0;
  std::vector<GroupSlack> groups(nl_.group_names().size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    groups[i].group = nl_.group_names()[i];
  }

  for (const SetupEndpoint& e : setup_eps_) {
    if (ps.untimed[e.net]) continue;  // case analysis: not a real path
    ++timed_eps;
    const double arrival = ps.ts[e.net].at;
    const double need = arrival + e.setup_ps;
    (e.write_domain ? min_write_period : min_period) =
        std::max(e.write_domain ? min_write_period : min_period, need);
    const double period =
        (e.write_domain ? opt.write_period_ps : opt.clock_period_ps) / ds;
    const double required = period - e.setup_ps;
    const double slack = (required - arrival) * ds;
    if (slack < rep.wns_ps) {
      rep.wns_ps = slack;
      worst_sep = &e;
      worst_po = nullptr;
      worst_arrival = arrival;
      worst_required = required;
      worst_net = e.net;
    }
    if (slack < 0) rep.tns_ps += slack;
    // Group slacks classify MAC-domain endpoints only; the write domain is
    // summarized by min_write_period_ps.
    if (e.write_domain) continue;
    GroupSlack& gs = groups[e.group];
    if (slack < gs.wns_ps) {
      gs.wns_ps = slack;
      gs.worst_arrival_ps = arrival * ds;
    }
  }
  for (const auto& io : nl_.primary_outputs()) {
    if (ps.untimed[io.net]) continue;
    ++timed_eps;
    const double arrival = ps.ts[io.net].at;
    min_period = std::max(min_period, arrival + opt.output_margin_ps);
    const double required =
        opt.clock_period_ps / ds - opt.output_margin_ps;
    const double slack = (required - arrival) * ds;
    if (slack < rep.wns_ps) {
      rep.wns_ps = slack;
      worst_sep = nullptr;
      worst_po = &io;
      worst_arrival = arrival;
      worst_required = required;
      worst_net = io.net;
    }
    if (slack < 0) rep.tns_ps += slack;
    GroupSlack& gs = groups[0];
    if (slack < gs.wns_ps) {
      gs.wns_ps = slack;
      gs.worst_arrival_ps = arrival * ds;
    }
  }

  rep.min_period_ps = min_period * ds;
  rep.min_write_period_ps = min_write_period * ds;
  rep.fmax_mhz = min_period > 0 ? 1.0e6 / rep.min_period_ps : 0.0;
  for (GroupSlack& gs : groups) {
    if (std::isfinite(gs.wns_ps)) rep.groups.push_back(std::move(gs));
  }

  if (opt.collect_group_interfaces) {
    const auto& gnames = nl_.group_names();
    rep.interfaces.resize(gnames.size());
    for (std::size_t i = 0; i < gnames.size(); ++i) {
      GroupInterface& gif = rep.interfaces[i];
      gif.group = gnames[i];
      gif.inputs.reserve(iface_in_[i].size());
      for (const std::uint32_t n : iface_in_[i]) {
        gif.inputs.push_back(
            {nl_.net_name(n), ps.ts[n].at * ds, ps.ts[n].slew * ds});
      }
      gif.outputs.reserve(iface_out_[i].size());
      for (const std::uint32_t n : iface_out_[i]) {
        gif.outputs.push_back(
            {nl_.net_name(n), ps.ts[n].at * ds, ps.ts[n].slew * ds});
      }
    }
  }

  if (obs::enabled()) {
    // One timed path per (non-untimed) endpoint in this analysis pass.
    obs::metrics().counter("sta.paths.timed").inc(timed_eps);
    obs::metrics().counter("sta.analyze.runs").inc();
  }

  if (worst_sep != nullptr || worst_po != nullptr) {
    rep.critical.arrival_ps = worst_arrival * ds;
    rep.critical.required_ps = worst_required * ds;
    if (worst_sep != nullptr) {
      const GateInfo& gi = gates_[worst_sep->gate];
      rep.critical.endpoint =
          gi.cell->name + "/" + gi.cell->pins[worst_sep->pin].name;
    } else {
      rep.critical.endpoint = "<out>/" + worst_po->name;
    }
    // Trace back the worst path.
    std::uint32_t n = worst_net;
    int guard = 0;
    while (n != kNoNet && guard++ < 4096) {
      PathStage st;
      st.arrival_ps = ps.ts[n].at * ds;
      if (ps.tr[n].via_gate >= 0) {
        const GateInfo& gi =
            gates_[static_cast<std::size_t>(ps.tr[n].via_gate)];
        st.master = gi.cell->name;
        st.group = nl_.group_names()[gi.group];
      } else {
        st.master = "<source>";
        st.group = "";
      }
      rep.critical.stages.push_back(std::move(st));
      n = ps.tr[n].prev_net;
    }
    std::reverse(rep.critical.stages.begin(), rep.critical.stages.end());
  }
  return rep;
}

}  // namespace syndcim::sta

#pragma once
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "core/diag.hpp"
#include "netlist/flatten.hpp"

namespace syndcim::sta {

/// Wire parasitics added on top of pin capacitance. Before placement a
/// fanout-based estimate is used; after placement the layout engine
/// back-annotates per-net capacitance.
struct WireModel {
  double cap_per_fanout_ff = 0.25;
  /// Optional per-net capacitance (indexed by flat net id); overrides the
  /// fanout estimate where the entry is >= 0.
  std::vector<double> per_net_cap_ff;

  [[nodiscard]] double net_cap(std::uint32_t net, int fanout) const {
    if (net < per_net_cap_ff.size() && per_net_cap_ff[net] >= 0.0) {
      return per_net_cap_ff[net];
    }
    return cap_per_fanout_ff * fanout;
  }
};

/// Propagation kernel selection. Both kernels implement the same timing
/// semantics with the same operation order and produce bit-identical
/// reports; kScalar is the retained gate-at-a-time control arm the golden
/// tests and perf benchmarks compare against.
enum class StaKernel : std::uint8_t {
  kSoa,     ///< flat per-level CSR arc loops with a cached load plan
  kScalar,  ///< retained gate-at-a-time reference
};

struct StaOptions {
  double clock_period_ps = 1250.0;  ///< MAC clock (800 MHz default)
  /// Weight-update clock period; SRAM write endpoints are checked against
  /// this instead of the MAC clock.
  double write_period_ps = 1250.0;
  double vdd = 0.9;
  double temp_c = 25.0;  ///< junction temperature (PVT corner)
  double input_slew_ps = 20.0;
  double input_delay_ps = 0.0;
  double output_margin_ps = 0.0;
  /// Max-transition design rule (nominal-domain ps): APR tools repair
  /// slew violations with repeaters, so propagated slews are clamped here.
  double max_slew_ps = 400.0;
  WireModel wire;
  /// Primary inputs held static during operation (bank selects, precision
  /// mode, FP select): excluded from timing like a case analysis, exactly
  /// as a constraints file would declare them. The untimed mask propagates
  /// through combinational gates whose every timing arc comes from an
  /// untimed or constant net, and untimed nets are not timed endpoints.
  /// Names must match primary input ports; unknown names are ignored
  /// (reported as STA-UNKNOWN-INPUT warnings when `diag` is set — a
  /// misspelled name silently re-times a path that should be static).
  std::vector<std::string> static_inputs;
  /// Also collect per-group boundary summaries (TimingReport::interfaces).
  /// Off by default: the extra pass costs one sweep over all pins, which
  /// search-time callers running thousands of analyses don't need.
  bool collect_group_interfaces = false;
  StaKernel kernel = StaKernel::kSoa;
  /// Optional diagnostics sink for constraint-sanity warnings.
  core::DiagEngine* diag = nullptr;
};

/// One stage of a reported path, already resolved to names.
struct PathStage {
  std::string master;  ///< cell name, or "<port>" at the endpoints
  std::string group;   ///< depth-1 instance the gate belongs to
  double arrival_ps = 0.0;
};

struct TimingPath {
  double arrival_ps = 0.0;
  double required_ps = 0.0;
  [[nodiscard]] double slack_ps() const { return required_ps - arrival_ps; }
  std::string endpoint;  ///< description of the endpoint
  std::vector<PathStage> stages;
};

/// Worst slack per depth-1 instance group (endpoint classification).
struct GroupSlack {
  std::string group;
  double wns_ps = std::numeric_limits<double>::infinity();
  double worst_arrival_ps = 0.0;
};

/// Timing of one net crossing a group boundary (voltage/temperature
/// scaling already applied, like every other reported time).
struct BoundaryArc {
  std::string net;
  double arrival_ps = 0.0;
  double slew_ps = 0.0;
};

/// Interface summary of one depth-1 instance group: the arrival/slew of
/// every net entering the group (consumed by its gates but driven
/// elsewhere) and leaving it (driven by its gates and consumed outside, or
/// a primary output). A group whose structure and input arcs are unchanged
/// between runs necessarily reproduces its output arcs, so these
/// summaries are what incremental consumers compare instead of
/// re-levelizing the cone.
struct GroupInterface {
  std::string group;
  std::vector<BoundaryArc> inputs;
  std::vector<BoundaryArc> outputs;
};

struct TimingReport {
  double wns_ps = 0.0;  ///< worst negative slack (positive if met)
  double tns_ps = 0.0;  ///< total negative slack (<= 0)
  /// Minimum feasible clock period (max arrival + setup over MAC-clocked
  /// endpoints) and the corresponding fmax.
  double min_period_ps = 0.0;
  double fmax_mhz = 0.0;
  /// Minimum feasible weight-update period.
  double min_write_period_ps = 0.0;
  std::vector<GroupSlack> groups;
  /// Per-group boundary summaries; populated only when
  /// StaOptions::collect_group_interfaces is set. Group order follows
  /// FlatNetlist::group_names(); nets appear in first-use gate order.
  std::vector<GroupInterface> interfaces;
  TimingPath critical;

  [[nodiscard]] bool met() const { return wns_ps >= 0.0; }
  /// Worst slack among endpoints whose group name is `g`; +inf if none.
  [[nodiscard]] double group_wns(std::string_view g) const;
};

/// Monte-Carlo process-variation results (paper Sec. I: DCIM's robustness
/// against PVT variation): fmax distribution over random per-gate delay
/// derates.
struct VariationReport {
  std::vector<double> fmax_samples_mhz;
  double mean_fmax_mhz = 0.0;
  double sigma_fmax_mhz = 0.0;
  /// Fraction of samples meeting the target frequency.
  [[nodiscard]] double yield_at(double freq_mhz) const;
};

/// Levelized static timing engine over a flattened netlist.
///
/// Roles: DFF/latch CK->Q launches at clk-to-q, D is a setup endpoint;
/// SRAM bitcell Q launches at t=0 (weights are static during MAC) and its
/// D/WL pins are endpoints in the weight-update clock domain; primary
/// inputs launch at input_delay, primary outputs are endpoints. Clock pins
/// see an ideal zero-skew clock.
///
/// Timing semantics shared by both kernels:
///  - Arrival: max over live arcs (an arc is live when its input net is
///    neither constant nor untimed), visited in (level, gate, arc) order.
///  - Slew: max over the same live arcs, independent of which arc wins
///    the arrival race (the worst transition reaches the next stage even
///    when a faster path launches it).
///  - Case analysis: a combinational output none of whose arcs fired is
///    untimed; untimed nets are excluded from the endpoint set.
class StaEngine {
 public:
  StaEngine(const netlist::FlatNetlist& nl, const cell::Library& lib);

  [[nodiscard]] TimingReport analyze(const StaOptions& opt) const;

  /// Monte-Carlo corner analysis: `samples` STA runs with independent
  /// lognormal-ish per-gate delay derates of relative sigma
  /// `delay_sigma` (e.g. 0.05 for 5% local variation) plus a global
  /// corner shift `global_sigma` shared by all gates of a sample.
  [[nodiscard]] VariationReport analyze_variation(const StaOptions& opt,
                                                  double delay_sigma,
                                                  double global_sigma,
                                                  int samples,
                                                  unsigned seed = 1) const;

  /// Total capacitance (pins + wire) on a net, as seen by its driver.
  [[nodiscard]] double net_load_ff(std::uint32_t net,
                                   const WireModel& wire) const;

 private:
  /// Per-analysis propagation state shared by both kernels. Arrival and
  /// slew live in one 16-byte record per net (both kernels always touch
  /// them together, so the pair costs one cache line, not two); same for
  /// the traceback pair written on an arrival win.
  struct PropState {
    struct NetTime {
      double at;
      double slew;
    };
    struct Trace {
      std::uint32_t prev_net;
      std::int32_t via_gate;
    };
    std::vector<NetTime> ts;
    std::vector<Trace> tr;
    std::vector<std::uint8_t> untimed;
    /// slew written by a live arc; doubles as the "some arc fired" flag
    /// the case analysis reads (a live arc always writes slew).
    std::vector<std::uint8_t> slew_set;
  };
  /// Everything that depends only on (netlist, library, wire model),
  /// computed once and reused across analyze calls and variation samples:
  /// per-net loads plus every arc's LUT rows with the load axis collapsed
  /// out (Lut2d::collapse_load), and the launch-point clk->q values at the
  /// fixed clock slew. Rows are deduplicated by (LUT, load): identical
  /// pairs collapse to bit-identical rows, and sharing them keeps the
  /// kernel's row working set cache-resident instead of streaming one
  /// private row pair per arc.
  struct LoadPlan {
    WireModel wire;
    std::vector<double> net_load;  ///< net_load_ff(n, wire), per net
    std::vector<double> rows;      ///< deduplicated collapsed rows
    std::vector<std::uint32_t> arc_drow;  ///< per arc, into rows
    std::vector<std::uint32_t> arc_srow;
    std::vector<double> launch_delay;  ///< per launch point (registers)
    std::vector<double> launch_slew;
  };
  [[nodiscard]] std::shared_ptr<const LoadPlan> load_plan(
      const WireModel& wire) const;
  [[nodiscard]] TimingReport analyze_impl(const StaOptions& opt,
                                          const float* gate_derate) const;
  void propagate_scalar(const StaOptions& opt, const float* gate_derate,
                        PropState& ps) const;
  void propagate_soa(const LoadPlan& plan, const StaOptions& opt,
                     const float* gate_derate, PropState& ps) const;

  struct GateInfo {
    const cell::Cell* cell;
    std::vector<std::uint32_t> pin_nets;  // by cell pin index
    std::uint32_t group;
  };
  /// One sequential output pin: registers launch clk->q from the plan,
  /// storage launches at t=0.
  struct LaunchPoint {
    std::uint32_t gate;
    std::uint32_t qnet;
    std::uint16_t pin;  ///< cell pin index of the output
    bool storage;
  };
  /// One setup endpoint (non-clock input pin of a sequential cell),
  /// resolved at construction so analyze never formats names for
  /// endpoints that don't end up on the critical path.
  struct SetupEndpoint {
    std::uint32_t net;
    std::uint32_t gate;
    std::uint32_t group;
    std::uint16_t pin;  ///< cell pin index, for the endpoint label
    bool write_domain;
    double setup_ps;
  };

  const netlist::FlatNetlist& nl_;
  const cell::Library& lib_;
  std::vector<GateInfo> gates_;
  std::vector<double> pin_cap_sum_;  // per net
  std::vector<int> fanout_;          // per net (input pin count)
  std::vector<std::int32_t> driver_gate_;  // per net; -1 = none/PI
  std::vector<std::int8_t> driver_pin_;    // cell pin index of driver
  std::vector<std::vector<std::uint32_t>> gate_order_;  // levels

  // SoA arc CSR over the levelized combinational gates, flattened in the
  // exact (level, gate, arc) visit order of the scalar arm so both
  // kernels accumulate max() in the same order.
  std::vector<std::uint32_t> arc_in_;
  std::vector<std::uint32_t> arc_out_;
  std::vector<std::uint32_t> arc_gate_;
  std::vector<const cell::Lut2d*> arc_delay_;
  std::vector<const cell::Lut2d*> arc_oslew_;
  std::vector<std::uint8_t> arc_axis_shared_;  // delay/slew share slew axis
  // Deduplicated slew axes: the library reuses a handful of axis vectors
  // across all cells, so the kernel locates on a flat table that stays in
  // cache instead of chasing each arc's Lut2d.
  std::vector<double> ax_vals_;
  std::vector<std::uint32_t> ax_off_;    // per axis id, into ax_vals_
  std::vector<std::uint32_t> ax_len_;    // per axis id
  std::vector<std::uint16_t> arc_dax_;   // delay-LUT axis id, per arc
  std::vector<std::uint16_t> arc_sax_;   // out-slew-LUT axis id, per arc
  std::vector<std::uint32_t> level_arc_begin_;  // per level, into arc_*
  std::vector<std::uint32_t> level_net_begin_;  // per level, into below
  std::vector<std::uint32_t> level_out_nets_;   // driven nets, visit order
  std::vector<std::uint8_t> net_const_;         // net_const != kNone
  std::vector<LaunchPoint> launches_;
  std::vector<SetupEndpoint> setup_eps_;
  // Structural group-interface membership (net ids in report order).
  std::vector<std::vector<std::uint32_t>> iface_in_;
  std::vector<std::vector<std::uint32_t>> iface_out_;

  mutable std::mutex plan_mu_;
  mutable std::shared_ptr<const LoadPlan> plan_;
};

}  // namespace syndcim::sta

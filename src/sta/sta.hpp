#pragma once
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "core/diag.hpp"
#include "netlist/flatten.hpp"

namespace syndcim::sta {

/// Wire parasitics added on top of pin capacitance. Before placement a
/// fanout-based estimate is used; after placement the layout engine
/// back-annotates per-net capacitance.
struct WireModel {
  double cap_per_fanout_ff = 0.25;
  /// Optional per-net capacitance (indexed by flat net id); overrides the
  /// fanout estimate where the entry is >= 0.
  std::vector<double> per_net_cap_ff;

  [[nodiscard]] double net_cap(std::uint32_t net, int fanout) const {
    if (net < per_net_cap_ff.size() && per_net_cap_ff[net] >= 0.0) {
      return per_net_cap_ff[net];
    }
    return cap_per_fanout_ff * fanout;
  }
};

struct StaOptions {
  double clock_period_ps = 1250.0;  ///< MAC clock (800 MHz default)
  /// Weight-update clock period; SRAM write endpoints are checked against
  /// this instead of the MAC clock.
  double write_period_ps = 1250.0;
  double vdd = 0.9;
  double temp_c = 25.0;  ///< junction temperature (PVT corner)
  double input_slew_ps = 20.0;
  double input_delay_ps = 0.0;
  double output_margin_ps = 0.0;
  /// Max-transition design rule (nominal-domain ps): APR tools repair
  /// slew violations with repeaters, so propagated slews are clamped here.
  double max_slew_ps = 400.0;
  WireModel wire;
  /// Primary inputs held static during operation (bank selects, precision
  /// mode, FP select): excluded from timing like a case analysis, exactly
  /// as a constraints file would declare them. Names must match primary
  /// input ports; unknown names are ignored (reported as
  /// STA-UNKNOWN-INPUT warnings when `diag` is set — a misspelled name
  /// silently re-times a path that should be static).
  std::vector<std::string> static_inputs;
  /// Also collect per-group boundary summaries (TimingReport::interfaces).
  /// Off by default: the extra pass costs one sweep over all pins, which
  /// search-time callers running thousands of analyses don't need.
  bool collect_group_interfaces = false;
  /// Optional diagnostics sink for constraint-sanity warnings.
  core::DiagEngine* diag = nullptr;
};

/// One stage of a reported path, already resolved to names.
struct PathStage {
  std::string master;  ///< cell name, or "<port>" at the endpoints
  std::string group;   ///< depth-1 instance the gate belongs to
  double arrival_ps = 0.0;
};

struct TimingPath {
  double arrival_ps = 0.0;
  double required_ps = 0.0;
  [[nodiscard]] double slack_ps() const { return required_ps - arrival_ps; }
  std::string endpoint;  ///< description of the endpoint
  std::vector<PathStage> stages;
};

/// Worst slack per depth-1 instance group (endpoint classification).
struct GroupSlack {
  std::string group;
  double wns_ps = std::numeric_limits<double>::infinity();
  double worst_arrival_ps = 0.0;
};

/// Timing of one net crossing a group boundary (voltage/temperature
/// scaling already applied, like every other reported time).
struct BoundaryArc {
  std::string net;
  double arrival_ps = 0.0;
  double slew_ps = 0.0;
};

/// Interface summary of one depth-1 instance group: the arrival/slew of
/// every net entering the group (consumed by its gates but driven
/// elsewhere) and leaving it (driven by its gates and consumed outside, or
/// a primary output). A group whose structure and input arcs are unchanged
/// between runs necessarily reproduces its output arcs, so these
/// summaries are what incremental consumers compare instead of
/// re-levelizing the cone.
struct GroupInterface {
  std::string group;
  std::vector<BoundaryArc> inputs;
  std::vector<BoundaryArc> outputs;
};

struct TimingReport {
  double wns_ps = 0.0;  ///< worst negative slack (positive if met)
  double tns_ps = 0.0;  ///< total negative slack (<= 0)
  /// Minimum feasible clock period (max arrival + setup over MAC-clocked
  /// endpoints) and the corresponding fmax.
  double min_period_ps = 0.0;
  double fmax_mhz = 0.0;
  /// Minimum feasible weight-update period.
  double min_write_period_ps = 0.0;
  std::vector<GroupSlack> groups;
  /// Per-group boundary summaries; populated only when
  /// StaOptions::collect_group_interfaces is set. Group order follows
  /// FlatNetlist::group_names(); nets appear in first-use gate order.
  std::vector<GroupInterface> interfaces;
  TimingPath critical;

  [[nodiscard]] bool met() const { return wns_ps >= 0.0; }
  /// Worst slack among endpoints whose group name is `g`; +inf if none.
  [[nodiscard]] double group_wns(std::string_view g) const;
};

/// Monte-Carlo process-variation results (paper Sec. I: DCIM's robustness
/// against PVT variation): fmax distribution over random per-gate delay
/// derates.
struct VariationReport {
  std::vector<double> fmax_samples_mhz;
  double mean_fmax_mhz = 0.0;
  double sigma_fmax_mhz = 0.0;
  /// Fraction of samples meeting the target frequency.
  [[nodiscard]] double yield_at(double freq_mhz) const;
};

/// Levelized static timing engine over a flattened netlist.
///
/// Roles: DFF/latch CK->Q launches at clk-to-q, D is a setup endpoint;
/// SRAM bitcell Q launches at t=0 (weights are static during MAC) and its
/// D/WL pins are endpoints in the weight-update clock domain; primary
/// inputs launch at input_delay, primary outputs are endpoints. Clock pins
/// see an ideal zero-skew clock.
class StaEngine {
 public:
  StaEngine(const netlist::FlatNetlist& nl, const cell::Library& lib);

  [[nodiscard]] TimingReport analyze(const StaOptions& opt) const;

  /// Monte-Carlo corner analysis: `samples` STA runs with independent
  /// lognormal-ish per-gate delay derates of relative sigma
  /// `delay_sigma` (e.g. 0.05 for 5% local variation) plus a global
  /// corner shift `global_sigma` shared by all gates of a sample.
  [[nodiscard]] VariationReport analyze_variation(const StaOptions& opt,
                                                  double delay_sigma,
                                                  double global_sigma,
                                                  int samples,
                                                  unsigned seed = 1) const;

  /// Total capacitance (pins + wire) on a net, as seen by its driver.
  [[nodiscard]] double net_load_ff(std::uint32_t net,
                                   const WireModel& wire) const;

 private:
  [[nodiscard]] TimingReport analyze_impl(const StaOptions& opt,
                                          const float* gate_derate) const;
  struct GateInfo {
    const cell::Cell* cell;
    std::vector<std::uint32_t> pin_nets;  // by cell pin index
    std::uint32_t group;
  };

  const netlist::FlatNetlist& nl_;
  const cell::Library& lib_;
  std::vector<GateInfo> gates_;
  std::vector<double> pin_cap_sum_;  // per net
  std::vector<int> fanout_;          // per net (input pin count)
  std::vector<std::int32_t> driver_gate_;  // per net; -1 = none/PI
  std::vector<std::int8_t> driver_pin_;    // cell pin index of driver
  std::vector<std::vector<std::uint32_t>> gate_order_;  // levels
};

}  // namespace syndcim::sta

#pragma once
#include <cstddef>
#include <string>
#include <string_view>

#include "sta/sta.hpp"

namespace syndcim::sta {

// Stable binary codecs for the timing artifact payloads (timings tier;
// WireModel also rides inside the route artifact). Doubles are stored as
// raw IEEE-754 bit patterns, so a decoded report is bit-identical to the
// computed one. Decoders throw core::BinDecodeError on bad payloads.

[[nodiscard]] std::string encode_wire_model(const WireModel& w);
[[nodiscard]] WireModel decode_wire_model(std::string_view payload);

[[nodiscard]] std::string encode_timing_report(const TimingReport& t);
[[nodiscard]] TimingReport decode_timing_report(std::string_view payload);

[[nodiscard]] std::size_t deep_bytes(const WireModel& w);
[[nodiscard]] std::size_t deep_bytes(const TimingReport& t);

}  // namespace syndcim::sta

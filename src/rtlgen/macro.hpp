#pragma once
#include <map>
#include <string>

#include "core/artifact_cache.hpp"
#include "netlist/design.hpp"
#include "rtlgen/arch.hpp"

namespace syndcim::rtlgen {

/// Shared subcircuit-module tier of the artifact cache: generated modules
/// keyed by their content key, reused across configurations that share a
/// subcircuit (elaborate-stage skip).
using ModuleCache = core::ArtifactCache<netlist::Module>;

/// A fully elaborated DCIM macro: hierarchical design plus the interface
/// contract (port names, cycle-level protocol, storage layout) shared by
/// the gate-level testbenches and the behavioral model.
///
/// Protocol (all cycles counted from the `load` cycle = cycle 0):
///   cycle 0          : load=1, parallel inputs applied (din / fp fields);
///                      clr/neg/cap low
///   cycles 1..IB     : compute; clr=1 and neg=1 on cycle 1 only
///                      (MSB-first two's complement serial input)
///   acc readable     : during cycle sa_done_cycles(IB) + 1
///   cap asserted     : during cycle sa_done_cycles(IB) + 1 (captures at
///                      its end; OFU registered outputs valid one cycle
///                      later, +1 more per tt5 pipeline register crossed)
///
/// Weight storage layout: bitcell for (col, row, bank) is the
/// (col*rows*mcr + row*mcr + bank)-th bitcell gate in flattening order.
/// A weight of precision p for (output o, row r) occupies columns
/// o*p + k (k=0..p-1, bit k in column o*p+k; MSB column two's complement
/// negative). The OAI22 mux style stores complemented bits (the write
/// port inverts the bitline, so external data is uncomplemented).
struct MacroDesign {
  netlist::Design design;
  std::string top = "dcim_macro";
  MacroConfig cfg;
  /// Content key of every generated subcircuit module, by module name
  /// (see rtlgen/content_key.hpp): the stable artifact address each
  /// module was — or could have been — cached under.
  std::map<std::string, std::string> module_keys;

  /// Cycles after `load` until the S&A accumulator has the full result.
  [[nodiscard]] int sa_done_cycles(int input_bits) const {
    return input_bits + (cfg.pipe.reg_after_tree ? 1 : 0);
  }
  /// Cycle (from load) during which OFU stage-`s` outputs are valid.
  [[nodiscard]] int ofu_valid_cycle(int input_bits, int stage) const;

  /// Flat bitcell index for (col, row, bank) in GateSim::bitcell_gates().
  [[nodiscard]] std::size_t bitcell_index(int col, int row, int bank) const {
    return static_cast<std::size_t>(col) * cfg.rows * cfg.mcr +
           static_cast<std::size_t>(row) * cfg.mcr +
           static_cast<std::size_t>(bank);
  }

  /// Output port base name for OFU group `g`, stage `s`, sub-result `j`.
  [[nodiscard]] static std::string out_bus(int g, int s, int j) {
    return "g" + std::to_string(g) + "_s" + std::to_string(s) + "_r" +
           std::to_string(j);
  }

  /// Quasi-static configuration ports (bank select, precision mode, FP
  /// select) for STA case analysis.
  [[nodiscard]] std::vector<std::string> static_control_ports() const;

  /// Cycles the alignment unit pipeline needs between applying FP fields
  /// and asserting `load` (0 for INT-only macros).
  [[nodiscard]] int align_latency() const;
};

/// Elaborates the complete macro (validates `cfg` first). With `modules`
/// set, each subcircuit is looked up by content key before generating and
/// newly generated modules are published for later calls — the output is
/// identical either way (cached modules are exact copies).
[[nodiscard]] MacroDesign gen_macro(const MacroConfig& cfg);
[[nodiscard]] MacroDesign gen_macro(const MacroConfig& cfg,
                                    ModuleCache* modules);

}  // namespace syndcim::rtlgen

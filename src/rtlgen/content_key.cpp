#include "rtlgen/content_key.hpp"

#include <algorithm>

#include "core/artifact_cache.hpp"
#include "rtlgen/alignment_unit.hpp"
#include "rtlgen/drivers.hpp"
#include "rtlgen/ofu.hpp"
#include "rtlgen/shift_adder.hpp"

namespace syndcim::rtlgen {

namespace {
void hash_tree(core::ArtifactHasher& h, const AdderTreeConfig& cfg) {
  h.str("tree1");
  h.i32(cfg.rows);
  h.i32(static_cast<int>(cfg.style));
  h.dbl(cfg.fa_fraction);
  h.b(cfg.carry_reorder);
  h.b(cfg.external_cpa);
}
}  // namespace

std::string tree_content_key(const AdderTreeConfig& cfg) {
  core::ArtifactHasher h;
  hash_tree(h, cfg);
  return h.hex();
}

std::string shift_adder_content_key(const ShiftAdderConfig& cfg) {
  core::ArtifactHasher h;
  h.str("sa1");
  h.i32(cfg.psum_bits);
  h.i32(cfg.width);
  h.b(cfg.redundant_psum);
  return h.hex();
}

std::string ofu_content_key(const OfuModuleConfig& cfg) {
  core::ArtifactHasher h;
  h.str("ofu1");
  h.i32(cfg.group_cols);
  h.i32(cfg.col_width);
  h.b(cfg.arrangement.input_reg);
  h.i32(cfg.arrangement.pipeline_regs);
  h.b(cfg.arrangement.retime_stage1);
  return h.hex();
}

std::string wl_driver_content_key(const WlDriverConfig& cfg) {
  core::ArtifactHasher h;
  h.str("wldrv1");
  h.i32(cfg.rows);
  h.i32(cfg.piso_bits);
  h.i32(cfg.am_bits);
  h.i32(cfg.mcr);
  h.b(cfg.oai22_gating);
  h.i32(cfg.row_fanout);
  return h.hex();
}

std::string write_port_content_key(const WritePortConfig& cfg) {
  core::ArtifactHasher h;
  h.str("wrport1");
  h.i32(cfg.rows);
  h.i32(cfg.cols);
  h.i32(cfg.mcr);
  h.b(cfg.invert_data);
  return h.hex();
}

std::string alignment_content_key(const AlignmentConfig& cfg) {
  core::ArtifactHasher h;
  h.str("align1");
  h.i32(cfg.format.exp_bits);
  h.i32(cfg.format.man_bits);
  h.i32(cfg.lanes);
  h.i32(cfg.guard_bits);
  h.b(cfg.pipelined);
  return h.hex();
}

std::string column_content_key(const MacroConfig& cfg) {
  // gen_column reads: rows, mcr, column_split (and the derived segment
  // geometry), sa_width, mux/bitcell styles and both pipe flags. The
  // tree/sa submodules are referenced by name, so their parameters do not
  // enter the column module's own structure.
  core::ArtifactHasher h;
  h.str("col1");
  h.i32(cfg.rows);
  h.i32(cfg.mcr);
  h.i32(cfg.column_split);
  h.i32(cfg.sa_width());
  h.i32(static_cast<int>(cfg.bitcell));
  h.i32(static_cast<int>(cfg.mux));
  h.b(cfg.pipe.reg_after_tree);
  h.b(cfg.pipe.retime_tree_cpa);
  return h.hex();
}

namespace {
void hash_config(core::ArtifactHasher& h, const MacroConfig& cfg) {
  h.str("cfg1");
  h.i32(cfg.rows);
  h.i32(cfg.cols);
  h.i32(cfg.mcr);
  h.u64(cfg.input_bits.size());
  for (const int b : cfg.input_bits) h.i32(b);
  h.u64(cfg.weight_bits.size());
  for (const int b : cfg.weight_bits) h.i32(b);
  h.u64(cfg.fp_formats.size());
  for (const num::FpFormat& f : cfg.fp_formats) {
    h.i32(f.exp_bits);
    h.i32(f.man_bits);
  }
  h.i32(cfg.fp_guard_bits);
  h.i32(static_cast<int>(cfg.bitcell));
  h.i32(static_cast<int>(cfg.mux));
  h.i32(static_cast<int>(cfg.tree.style));
  h.dbl(cfg.tree.fa_fraction);
  h.b(cfg.tree.carry_reorder);
  h.b(cfg.pipe.reg_after_tree);
  h.b(cfg.pipe.retime_tree_cpa);
  h.b(cfg.ofu.input_reg);
  h.i32(cfg.ofu.pipeline_regs);
  h.b(cfg.ofu.retime_stage1);
  h.i32(cfg.column_split);
}
}  // namespace

std::string config_content_key(const MacroConfig& cfg) {
  core::ArtifactHasher h;
  hash_config(h, cfg);
  return h.hex();
}

std::string slice_content_key(const MacroConfig& cfg) {
  MacroConfig sc = cfg;
  sc.cols = std::max(cfg.max_weight_bits(), 8);
  return config_content_key(sc);
}

}  // namespace syndcim::rtlgen

#pragma once
#include <string>
#include <vector>

#include "num/fp_format.hpp"

namespace syndcim::rtlgen {

/// Adder tree topology (paper Sec. III-B).
enum class AdderTreeStyle {
  kRcaTree,     ///< conventional tree of signed ripple-carry adders
  kCompressor,  ///< bit-wise 4-2 compressor CSA
  kMixed,       ///< mixed compressor / full-adder CSA (the paper's design)
};

/// Multiplier + multiplexer circuit style (paper Sec. II-B).
enum class MuxStyle {
  kPassGate1T,  ///< AutoDCIM-style 1T pass gate: smallest, slow, leaky
  kTGateNor,    ///< 2T transmission gate + NOR multiply (common choice)
  kOai22Fused,  ///< OAI22 fused mux-multiplier; not scalable beyond MCR=2
};

enum class BitcellKind { k6T, k8T, k12T };

[[nodiscard]] std::string to_string(AdderTreeStyle s);
[[nodiscard]] std::string to_string(MuxStyle s);
[[nodiscard]] std::string to_string(BitcellKind k);
[[nodiscard]] const char* bitcell_cell_name(BitcellKind k);

struct AdderTreeConfig {
  int rows = 64;  ///< number of 1-bit partial products to accumulate
  AdderTreeStyle style = AdderTreeStyle::kMixed;
  /// Mixed style: fraction of the reduction performed by full adders
  /// instead of 4-2 compressors (0 = compressor-only, 1 = FA-only).
  /// Strict timing wants more FAs; loose timing wants more compressors.
  double fa_fraction = 0.0;
  /// Route fast carry outputs into slow compressor inputs (the paper's
  /// connection-reorder optimization).
  bool carry_reorder = true;
  /// When true the final carry-propagate stage is omitted and the module
  /// exposes the redundant sum/carry vectors — used by the tt2 retiming
  /// move that pushes the CPA into the S&A stage.
  bool external_cpa = false;

  [[nodiscard]] int sum_bits() const;  ///< width of the completed sum
};

/// Per-column pipeline arrangement chosen by the searcher.
struct ColumnPipeline {
  /// Register between adder tree and S&A (false = tree fused into the S&A
  /// cycle — the step-3 latency optimization).
  bool reg_after_tree = true;
  /// tt2: register holds the redundant CSA vectors; the final CPA is
  /// retimed into the S&A stage. Requires reg_after_tree.
  bool retime_tree_cpa = false;
};

/// Output fusion unit arrangement. Register chain:
///   S&A acc -> [input capture reg] -> fusion stages with pipeline regs
struct OfuConfig {
  /// Capture register between S&A and OFU (false = OFU fused with S&A,
  /// the step-3 latency optimization).
  bool input_reg = true;
  /// tt5, applied repeatedly: number of fusion stages whose outputs are
  /// registered, starting from the widest (last) stage. 0 = fully
  /// combinational OFU after the capture register.
  int pipeline_regs = 0;
  /// tt4: retime the first fusion stage into the S&A clock stage (it then
  /// computes before the capture register). Requires input_reg.
  bool retime_stage1 = false;
};

/// Complete architecture of one DCIM macro.
struct MacroConfig {
  int rows = 64;  ///< H: inputs per column dot-product
  int cols = 64;  ///< W: compute columns (1-bit weight columns)
  int mcr = 2;    ///< memory-compute ratio: storage banks per compute bit

  /// Supported serial-input precisions (bits); the widest sizes the S&A.
  std::vector<int> input_bits = {4, 8};
  /// Supported weight precisions; the widest sizes the OFU. Weights of
  /// precision p occupy p adjacent columns (two's complement, MSB column
  /// carries negative weight).
  std::vector<int> weight_bits = {4, 8};
  /// FP formats handled by the alignment unit (empty = INT only).
  std::vector<num::FpFormat> fp_formats = {};
  int fp_guard_bits = 2;

  BitcellKind bitcell = BitcellKind::k6T;
  MuxStyle mux = MuxStyle::kTGateNor;
  AdderTreeConfig tree = {};
  ColumnPipeline pipe = {};
  OfuConfig ofu = {};
  /// tt3: columns physically split into `column_split` segments of
  /// rows/column_split each, recombined by an extra adder stage.
  int column_split = 1;

  [[nodiscard]] int max_input_bits() const;
  [[nodiscard]] int max_weight_bits() const;
  [[nodiscard]] int segment_rows() const { return rows / column_split; }
  /// S&A accumulator width for one column segment.
  [[nodiscard]] int sa_width() const;
  /// Storage capacity in bits.
  [[nodiscard]] long storage_bits() const {
    return static_cast<long>(rows) * cols * mcr;
  }
  /// Throws if the configuration is structurally invalid (non-power-of-two
  /// dims, OAI22 mux with MCR>2, split below 8 rows, ...).
  void validate() const;
};

}  // namespace syndcim::rtlgen

#pragma once
#include <string>

#include "rtlgen/arch.hpp"

namespace syndcim::rtlgen {

struct OfuModuleConfig;
struct WlDriverConfig;
struct WritePortConfig;
struct AlignmentConfig;
struct ShiftAdderConfig;

// Stable content keys for generated subcircuits: each key is a 128-bit
// hash (hex) of the generator's version tag plus every parameter the
// generator reads — parameters in, identical module out. Consumers append
// the cell-library fingerprint where a downstream artifact (timing, power,
// area) depends on cell characterization; the module structure itself does
// not, so these keys deliberately exclude it.

[[nodiscard]] std::string tree_content_key(const AdderTreeConfig& cfg);
[[nodiscard]] std::string shift_adder_content_key(const ShiftAdderConfig& cfg);
[[nodiscard]] std::string ofu_content_key(const OfuModuleConfig& cfg);
[[nodiscard]] std::string wl_driver_content_key(const WlDriverConfig& cfg);
[[nodiscard]] std::string write_port_content_key(const WritePortConfig& cfg);
[[nodiscard]] std::string alignment_content_key(const AlignmentConfig& cfg);
/// Key of the per-column module (covers exactly the MacroConfig fields
/// gen_column reads; cols-independent).
[[nodiscard]] std::string column_content_key(const MacroConfig& cfg);

/// Canonical whole-configuration key: every architecture knob of `cfg`
/// (precision lists and FP formats included). Two configs with equal keys
/// elaborate to identical macros.
[[nodiscard]] std::string config_content_key(const MacroConfig& cfg);

/// Key of the characterization slice `cfg` maps to: config_content_key
/// with `cols` normalized to the one-OFU-group slice width. Configs that
/// differ only in column count share a slice — and therefore share every
/// slice-derived artifact.
[[nodiscard]] std::string slice_content_key(const MacroConfig& cfg);

}  // namespace syndcim::rtlgen

#include "rtlgen/drivers.hpp"

#include <bit>
#include <stdexcept>

#include "rtlgen/gates.hpp"

namespace syndcim::rtlgen {

namespace {
[[nodiscard]] int log2i(int v) {
  return std::bit_width(static_cast<unsigned>(v)) - 1;
}
}  // namespace

netlist::Module gen_wl_driver(const WlDriverConfig& cfg,
                              const std::string& module_name) {
  if (cfg.rows < 1 || cfg.piso_bits < 1) {
    throw std::invalid_argument("gen_wl_driver: bad dimensions");
  }
  if (cfg.am_bits > cfg.piso_bits) {
    throw std::invalid_argument("gen_wl_driver: am_bits > piso_bits");
  }
  netlist::Module m(module_name);
  GateBuilder gb(m, "wl_");
  const NetId clk = m.add_port("clk", netlist::PortDir::kIn);
  const NetId load = m.add_port("load", netlist::PortDir::kIn);
  const bool fp = cfg.am_bits > 0;
  const NetId fp_sel = fp ? m.add_port("fp_sel", netlist::PortDir::kIn)
                          : NetId{};
  std::vector<NetId> selh;
  if (cfg.oai22_gating) {
    selh = m.add_port_bus("selh", netlist::PortDir::kIn, cfg.mcr);
  }
  const auto act = m.add_port_bus("act", netlist::PortDir::kOut, cfg.rows);
  std::vector<NetId> gseln;
  if (cfg.oai22_gating) {
    gseln = m.add_port_bus("gseln", netlist::PortDir::kOut,
                           cfg.rows * cfg.mcr);
  }

  // `load` (and `fp_sel`) fan out to every PISO mux: distribution tree.
  const NetId load_root = gb.buf(load, "BUFX16");
  const NetId fps_root = fp ? gb.buf(fp_sel, "BUFX16") : NetId{};

  for (int r = 0; r < cfg.rows; ++r) {
    const NetId load_r = gb.buf(load_root, "BUFX2");
    const NetId fps_r = fp ? gb.buf(fps_root, "BUFX2") : NetId{};
    const auto din = m.add_port_bus("din" + std::to_string(r),
                                    netlist::PortDir::kIn, cfg.piso_bits);
    std::vector<NetId> par(din.begin(), din.end());
    if (fp) {
      const auto am = m.add_port_bus("am" + std::to_string(r),
                                     netlist::PortDir::kIn, cfg.am_bits);
      // Aligned mantissa is placed MSB-aligned in the PISO; bits below it
      // stay zero in FP mode.
      const int lo = cfg.piso_bits - cfg.am_bits;
      for (int i = 0; i < cfg.piso_bits; ++i) {
        const NetId fp_bit =
            i >= lo ? am[static_cast<std::size_t>(i - lo)] : gb.c0();
        par[static_cast<std::size_t>(i)] =
            gb.mux2(par[static_cast<std::size_t>(i)], fp_bit, fps_r);
      }
    }
    // PISO: shift left each cycle, load on `load`.
    std::vector<NetId> q = m.add_bus("piso" + std::to_string(r),
                                     cfg.piso_bits);
    for (int i = 0; i < cfg.piso_bits; ++i) {
      const NetId shift_in =
          i == 0 ? gb.c0() : q[static_cast<std::size_t>(i - 1)];
      const NetId d = gb.mux2(shift_in, par[static_cast<std::size_t>(i)],
                              load_r);
      m.add_cell("piso_reg_" + std::to_string(r) + "_" + std::to_string(i),
                 "DFFX1",
                 {{"D", d}, {"CK", clk},
                  {"Q", q[static_cast<std::size_t>(i)]}});
    }
    const NetId top = q[static_cast<std::size_t>(cfg.piso_bits - 1)];
    // Two-stage row driver for wide arrays.
    const char* drv = cfg.row_fanout > 96 ? "BUFX16" : "BUFX8";
    const NetId pre = cfg.row_fanout > 96
                          ? gb.buf(top, "BUFX4")
                          : top;
    m.add_cell("act_buf_" + std::to_string(r), drv,
               {{"A", pre}, {"Y", act[r]}});
    if (cfg.oai22_gating) {
      // The gated selects drive one OAI22 per compute column: buffer the
      // row line like the activation line.
      for (int k = 0; k < cfg.mcr; ++k) {
        const NetId raw = gb.nand2(selh[static_cast<std::size_t>(k)], top,
                                   "NAND2X2");
        m.add_cell(
            "gsel_buf_" + std::to_string(r) + "_" + std::to_string(k),
            cfg.row_fanout > 96 ? "BUFX16" : "BUFX8",
            {{"A", raw},
             {"Y", gseln[static_cast<std::size_t>(r * cfg.mcr + k)]}});
      }
    }
  }
  return m;
}

netlist::Module gen_write_port(const WritePortConfig& cfg,
                               const std::string& module_name) {
  if (cfg.rows < 2 || cfg.cols < 1 || cfg.mcr < 1) {
    throw std::invalid_argument("gen_write_port: bad dimensions");
  }
  netlist::Module m(module_name);
  GateBuilder gb(m, "wp_");
  const NetId clk = m.add_port("clk", netlist::PortDir::kIn);
  const NetId wen = m.add_port("wen", netlist::PortDir::kIn);
  const int abits = log2i(cfg.rows);
  const int bbits = cfg.mcr > 1 ? log2i(cfg.mcr) : 0;
  const auto waddr = m.add_port_bus("waddr", netlist::PortDir::kIn, abits);
  std::vector<NetId> wbank;
  if (bbits > 0) {
    wbank = m.add_port_bus("wbank", netlist::PortDir::kIn, bbits);
  }
  const auto wd = m.add_port_bus("wd", netlist::PortDir::kIn, cfg.cols);
  const auto wl = m.add_port_bus("wl", netlist::PortDir::kOut,
                                 cfg.rows * cfg.mcr);
  const auto wdata = m.add_port_bus("wdata", netlist::PortDir::kOut,
                                    cfg.cols);

  // Register the write command (one-cycle write pipeline).
  const NetId wen_q = gb.dff(wen, clk);
  std::vector<NetId> a_q = gb.dff_bus({waddr.begin(), waddr.end()}, clk);
  std::vector<NetId> b_q;
  if (bbits > 0) b_q = gb.dff_bus(wbank, clk);

  // Address literals drive half the row decoders each: buffer them.
  std::vector<NetId> a_n = gb.inv_bus(a_q);
  for (NetId& n : a_q) n = gb.buf(n, "BUFX8");
  for (NetId& n : a_n) n = gb.buf(n, "BUFX8");
  auto decode = [&](const std::vector<NetId>& q, const std::vector<NetId>& n,
                    int value, int bits) {
    std::vector<NetId> lits;
    lits.reserve(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) {
      lits.push_back(((value >> i) & 1) ? q[static_cast<std::size_t>(i)]
                                        : n[static_cast<std::size_t>(i)]);
    }
    while (lits.size() > 1) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
        next.push_back(gb.and2(lits[i], lits[i + 1]));
      }
      if (lits.size() % 2 == 1) next.push_back(lits.back());
      lits = std::move(next);
    }
    return lits[0];
  };

  std::vector<NetId> bank_en(static_cast<std::size_t>(cfg.mcr));
  std::vector<NetId> b_n = gb.inv_bus(b_q);
  for (int k = 0; k < cfg.mcr; ++k) {
    const NetId bsel =
        cfg.mcr == 1 ? gb.c1() : decode(b_q, b_n, k, bbits);
    // Bank enables gate every row's wordline AND: buffered.
    bank_en[static_cast<std::size_t>(k)] =
        gb.buf(gb.and2(bsel, wen_q), "BUFX8");
  }
  for (int r = 0; r < cfg.rows; ++r) {
    const NetId row = decode(a_q, a_n, r, abits);
    for (int k = 0; k < cfg.mcr; ++k) {
      const NetId en = gb.and2(row, bank_en[static_cast<std::size_t>(k)]);
      m.add_cell("wl_buf_" + std::to_string(r) + "_" + std::to_string(k),
                 "BUFX8",
                 {{"A", en}, {"Y", wl[static_cast<std::size_t>(r * cfg.mcr + k)]}});
    }
  }
  for (int c = 0; c < cfg.cols; ++c) {
    NetId d = gb.dff(wd[static_cast<std::size_t>(c)], clk);
    if (cfg.invert_data) d = gb.inv(d);
    m.add_cell("bl_buf_" + std::to_string(c), "BUFX8",
               {{"A", d}, {"Y", wdata[static_cast<std::size_t>(c)]}});
  }
  return m;
}

}  // namespace syndcim::rtlgen

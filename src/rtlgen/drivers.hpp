#pragma once
#include "netlist/module.hpp"
#include "rtlgen/arch.hpp"

namespace syndcim::rtlgen {

/// WL driver + input buffer: one parallel-in serial-out (PISO) register
/// per row feeding the row's activation line MSB-first through a strong
/// buffer. With FP support, a per-bit mux selects between the raw integer
/// input and the (left-placed) aligned mantissa from the alignment unit.
/// For the OAI22 fused mux-multiplier style it also produces the per-row
/// active-low gated bank selects gseln[r*mcr+k] = !(selh[k] & act[r]).
///
/// Ports:
///   clk, load                      : PISO capture control
///   din{r}[0..piso_bits)           : integer input, MSB-aligned
///   am{r}[0..am_bits), fp_sel      : aligned mantissa + select (fp only)
///   selh[0..mcr), gseln[...]       : one-hot bank select (OAI22 only)
///   act[0..rows)                   : buffered activation bits
struct WlDriverConfig {
  int rows = 64;
  int piso_bits = 8;
  int am_bits = 0;  ///< 0 = integer-only (no fp mux)
  int mcr = 2;
  bool oai22_gating = false;
  /// Loads on each activation line (one multiplier per compute column);
  /// sizes the row buffer.
  int row_fanout = 64;
};

[[nodiscard]] netlist::Module gen_wl_driver(const WlDriverConfig& cfg,
                                            const std::string& module_name);

/// BL driver + write port: registers the write command, decodes the row
/// address and bank select into per-(row,bank) write wordlines, and
/// drives the per-column write bitlines.
///
/// Ports:
///   clk, wen, waddr[log2 rows], wbank[log2 mcr], wd[0..cols)
///   wl[0..rows*mcr), wdata[0..cols)
struct WritePortConfig {
  int rows = 64;
  int cols = 64;
  int mcr = 2;
  /// OAI22 style stores complemented weights: invert the bitline data.
  bool invert_data = false;
};

[[nodiscard]] netlist::Module gen_write_port(const WritePortConfig& cfg,
                                             const std::string& module_name);

}  // namespace syndcim::rtlgen

#include "rtlgen/gates.hpp"

#include <algorithm>
#include <stdexcept>

namespace syndcim::rtlgen {

std::string GateBuilder::uniq(const char* stem) {
  return prefix_ + stem + "_" + std::to_string(counter_++);
}

NetId GateBuilder::inv(NetId a, const std::string& cell) {
  const NetId y = m_.add_net(uniq("inv"));
  m_.add_cell(m_.net(y).name, cell, {{"A", a}, {"Y", y}});
  return y;
}

NetId GateBuilder::buf(NetId a, const std::string& cell) {
  const NetId y = m_.add_net(uniq("buf"));
  m_.add_cell(m_.net(y).name, cell, {{"A", a}, {"Y", y}});
  return y;
}

NetId GateBuilder::and2(NetId a, NetId b, const std::string& cell) {
  const NetId y = m_.add_net(uniq("and"));
  m_.add_cell(m_.net(y).name, cell, {{"A", a}, {"B", b}, {"Y", y}});
  return y;
}

NetId GateBuilder::or2(NetId a, NetId b, const std::string& cell) {
  const NetId y = m_.add_net(uniq("or"));
  m_.add_cell(m_.net(y).name, cell, {{"A", a}, {"B", b}, {"Y", y}});
  return y;
}

NetId GateBuilder::nand2(NetId a, NetId b, const std::string& cell) {
  const NetId y = m_.add_net(uniq("nand"));
  m_.add_cell(m_.net(y).name, cell, {{"A", a}, {"B", b}, {"Y", y}});
  return y;
}

NetId GateBuilder::nor2(NetId a, NetId b, const std::string& cell) {
  const NetId y = m_.add_net(uniq("nor"));
  m_.add_cell(m_.net(y).name, cell, {{"A", a}, {"B", b}, {"Y", y}});
  return y;
}

NetId GateBuilder::xor2(NetId a, NetId b, const std::string& cell) {
  const NetId y = m_.add_net(uniq("xor"));
  m_.add_cell(m_.net(y).name, cell, {{"A", a}, {"B", b}, {"Y", y}});
  return y;
}

NetId GateBuilder::mux2(NetId a, NetId b, NetId s, const std::string& cell) {
  const NetId y = m_.add_net(uniq("mux"));
  m_.add_cell(m_.net(y).name, cell,
              {{"A", a}, {"B", b}, {"S", s}, {"Y", y}});
  return y;
}

NetId GateBuilder::oai22(NetId a, NetId b, NetId c, NetId d) {
  const NetId y = m_.add_net(uniq("oai22"));
  m_.add_cell(m_.net(y).name, "OAI22X1",
              {{"A", a}, {"B", b}, {"C", c}, {"D", d}, {"Y", y}});
  return y;
}

GateBuilder::HaOut GateBuilder::ha(NetId a, NetId b) {
  const NetId s = m_.add_net(uniq("ha_s"));
  const NetId co = m_.add_net(uniq("ha_co"));
  m_.add_cell(uniq("ha"), "HAX1", {{"A", a}, {"B", b}, {"S", s}, {"CO", co}});
  return {s, co};
}

GateBuilder::FaOut GateBuilder::fa(NetId a, NetId b, NetId ci,
                                   const std::string& cell) {
  const NetId s = m_.add_net(uniq("fa_s"));
  const NetId co = m_.add_net(uniq("fa_co"));
  m_.add_cell(uniq("fa"), cell,
              {{"A", a}, {"B", b}, {"CI", ci}, {"S", s}, {"CO", co}});
  return {s, co};
}

GateBuilder::CmpOut GateBuilder::cmp42(NetId a, NetId b, NetId c, NetId d,
                                       NetId cin, const std::string& cell) {
  const NetId s = m_.add_net(uniq("cmp_s"));
  const NetId co = m_.add_net(uniq("cmp_c"));
  const NetId cout = m_.add_net(uniq("cmp_cout"));
  m_.add_cell(uniq("cmp"), cell,
              {{"A", a},
               {"B", b},
               {"C", c},
               {"D", d},
               {"CIN", cin},
               {"S", s},
               {"CO", co},
               {"COUT", cout}});
  return {s, co, cout};
}

NetId GateBuilder::dff(NetId d, NetId clk, const std::string& cell) {
  const NetId q = m_.add_net(uniq("q"));
  m_.add_cell(uniq("reg"), cell, {{"D", d}, {"CK", clk}, {"Q", q}});
  return q;
}

NetId GateBuilder::dffe(NetId d, NetId e, NetId clk) {
  const NetId q = m_.add_net(uniq("qe"));
  m_.add_cell(uniq("rege"), "DFFEX1",
              {{"D", d}, {"E", e}, {"CK", clk}, {"Q", q}});
  return q;
}

std::vector<NetId> GateBuilder::dff_bus(const std::vector<NetId>& d,
                                        NetId clk) {
  std::vector<NetId> q;
  q.reserve(d.size());
  for (const NetId n : d) q.push_back(dff(n, clk));
  return q;
}

std::vector<NetId> GateBuilder::dffe_bus(const std::vector<NetId>& d,
                                         NetId e, NetId clk) {
  std::vector<NetId> q;
  q.reserve(d.size());
  for (const NetId n : d) q.push_back(dffe(n, e, clk));
  return q;
}

std::vector<NetId> GateBuilder::inv_bus(const std::vector<NetId>& a) {
  std::vector<NetId> y;
  y.reserve(a.size());
  for (const NetId n : a) y.push_back(inv(n));
  return y;
}

std::vector<NetId> GateBuilder::xor_bus(const std::vector<NetId>& a,
                                        NetId ctrl) {
  std::vector<NetId> y;
  y.reserve(a.size());
  for (const NetId n : a) y.push_back(xor2(n, ctrl));
  return y;
}

std::vector<NetId> GateBuilder::and_bus(const std::vector<NetId>& a,
                                        NetId ctrl) {
  std::vector<NetId> y;
  y.reserve(a.size());
  for (const NetId n : a) y.push_back(and2(n, ctrl));
  return y;
}

std::vector<NetId> GateBuilder::mux_bus(const std::vector<NetId>& a,
                                        const std::vector<NetId>& b,
                                        NetId s) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("GateBuilder::mux_bus: width mismatch");
  }
  std::vector<NetId> y;
  y.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    y.push_back(mux2(a[i], b[i], s));
  }
  return y;
}

GateBuilder::AddOut GateBuilder::rca(const std::vector<NetId>& a,
                                     const std::vector<NetId>& b, NetId cin,
                                     const std::string& fa_cell) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("GateBuilder::rca: width mismatch");
  }
  AddOut out;
  out.sum.reserve(a.size());
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i == 0 && !carry.valid()) {
      const HaOut h = ha(a[0], b[0]);
      out.sum.push_back(h.s);
      carry = h.co;
    } else {
      const FaOut f = fa(a[i], b[i], carry, fa_cell);
      out.sum.push_back(f.s);
      carry = f.co;
    }
  }
  out.cout = carry;
  return out;
}

GateBuilder::AddOut GateBuilder::add_sub(const std::vector<NetId>& a,
                                         const std::vector<NetId>& b,
                                         NetId sub,
                                         const std::string& fa_cell) {
  return rca(a, xor_bus(b, sub), sub, fa_cell);
}

GateBuilder::AddOut GateBuilder::csel(const std::vector<NetId>& a,
                                      const std::vector<NetId>& b, NetId cin,
                                      int block) {
  if (a.size() != b.size() || a.empty() || block < 2) {
    throw std::invalid_argument("GateBuilder::csel: bad operands");
  }
  const int w = static_cast<int>(a.size());
  AddOut out;
  out.sum.reserve(a.size());
  // First block ripples directly from cin.
  const int first = std::min(block, w);
  {
    std::vector<NetId> ba(a.begin(), a.begin() + first);
    std::vector<NetId> bb(b.begin(), b.begin() + first);
    AddOut r = rca(ba, bb, cin);
    out.sum.insert(out.sum.end(), r.sum.begin(), r.sum.end());
    out.cout = r.cout;
  }
  for (int lo = first; lo < w; lo += block) {
    const int hi = std::min(lo + block, w);
    std::vector<NetId> ba(a.begin() + lo, a.begin() + hi);
    std::vector<NetId> bb(b.begin() + lo, b.begin() + hi);
    const AddOut r0 = rca(ba, bb, c0());
    const AddOut r1 = rca(ba, bb, c1());
    const NetId carry = out.cout;
    auto sel = mux_bus(r0.sum, r1.sum, carry);
    out.sum.insert(out.sum.end(), sel.begin(), sel.end());
    // The carry chain is the critical path: strong select muxes.
    out.cout = mux2(r0.cout, r1.cout, carry, "MUX2X2");
  }
  return out;
}

GateBuilder::AddOut GateBuilder::add_sub_fast(const std::vector<NetId>& a,
                                              const std::vector<NetId>& b,
                                              NetId sub) {
  return csel(a, xor_bus(b, sub), sub);
}

std::vector<NetId> GateBuilder::sext(const std::vector<NetId>& a,
                                     int width) {
  if (a.empty() || static_cast<int>(a.size()) > width) {
    throw std::invalid_argument("GateBuilder::sext: bad width");
  }
  std::vector<NetId> y = a;
  while (static_cast<int>(y.size()) < width) y.push_back(a.back());
  return y;
}

std::vector<NetId> GateBuilder::zext(const std::vector<NetId>& a,
                                     int width) {
  if (static_cast<int>(a.size()) > width) {
    throw std::invalid_argument("GateBuilder::zext: bad width");
  }
  std::vector<NetId> y = a;
  while (static_cast<int>(y.size()) < width) y.push_back(c0());
  return y;
}

std::vector<NetId> GateBuilder::shl(const std::vector<NetId>& a, int k) {
  if (k < 0) throw std::invalid_argument("GateBuilder::shl: negative shift");
  std::vector<NetId> y(static_cast<std::size_t>(k), c0());
  y.insert(y.end(), a.begin(), a.end());
  return y;
}

}  // namespace syndcim::rtlgen

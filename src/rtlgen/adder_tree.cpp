#include "rtlgen/adder_tree.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "rtlgen/gates.hpp"

namespace syndcim::rtlgen {

namespace {

/// One signal in the bit heap with an arrival estimate (in parasitic-delay
/// units mirroring the characterized cells) used for carry reordering.
struct Sig {
  NetId net;
  double arr = 0.0;
};

// Arrival cost constants track the cell library's parasitic delays.
constexpr double kFaS = 6.8, kFaCo = 4.2, kFaCiS = 4.8;
constexpr double kHaS = 4.5, kHaCo = 2.2;
constexpr double kCmpAbcS = 10.5, kCmpLateS = 5.5;
constexpr double kCmpAbcC = 8.0, kCmpLateC = 4.4;
constexpr double kCmpCout = 4.2;

using Heap = std::vector<std::vector<Sig>>;

int max_height(const Heap& h) {
  std::size_t m = 0;
  for (const auto& col : h) m = std::max(m, col.size());
  return static_cast<int>(m);
}

/// Orders a column so that late-arriving signals are taken last (and thus
/// land on the fast late ports). Without reorder, keeps FIFO order.
void order_column(std::vector<Sig>& col, bool reorder) {
  if (reorder) {
    std::stable_sort(col.begin(), col.end(),
                     [](const Sig& a, const Sig& b) { return a.arr < b.arr; });
  }
}

/// Deterministic op-mix sequencer: returns true when the op at `index`
/// should use a full adder instead of a compressor, hitting `fa_fraction`
/// in the long run (Bresenham-style accumulation).
struct MixPolicy {
  double fa_fraction;
  double acc = 0.0;
  bool next_is_fa() {
    acc += fa_fraction;
    if (acc >= 1.0 - 1e-12) {
      acc -= 1.0;
      return true;
    }
    return false;
  }
};

struct ReductionResult {
  Heap heap;  // every column reduced to height <= 2
};

ReductionResult reduce_heap(GateBuilder& gb, Heap heap, double fa_fraction,
                            bool reorder) {
  MixPolicy mix{fa_fraction};
  while (max_height(heap) > 2) {
    Heap next(heap.size() + 1);
    // Intra-stage compressor carry chain: COUTs produced in column c feed
    // CINs of compressors in column c+1 of the same stage.
    std::vector<std::vector<Sig>> chain(heap.size() + 2);
    for (std::size_t c = 0; c < heap.size(); ++c) {
      std::vector<Sig>& col = heap[c];
      order_column(col, reorder);
      std::size_t taken = 0;
      auto remaining = [&] { return col.size() - taken; };
      std::size_t chain_used = 0;

      while (remaining() >= 4 && !mix.next_is_fa()) {
        // Compressor: early signals to A,B,C; latest of the four to D.
        const Sig a = col[taken], b = col[taken + 1], cc = col[taken + 2],
                  d = col[taken + 3];
        taken += 4;
        Sig cin{gb.c0(), 0.0};
        if (chain_used < chain[c].size()) cin = chain[c][chain_used++];
        const auto out = gb.cmp42(a.net, b.net, cc.net, d.net, cin.net);
        const double abc = std::max({a.arr, b.arr, cc.arr});
        const double late = std::max(d.arr, cin.arr);
        next[c].push_back(
            {out.s, std::max(abc + kCmpAbcS, late + kCmpLateS)});
        next[c + 1].push_back(
            {out.c, std::max(abc + kCmpAbcC, late + kCmpLateC)});
        chain[c + 1].push_back({out.cout, abc + kCmpCout});
      }
      while (remaining() >= 3) {
        // Full adder: latest of the three to CI (the fast port).
        const Sig a = col[taken], b = col[taken + 1], ci = col[taken + 2];
        taken += 3;
        const auto out = gb.fa(a.net, b.net, ci.net);
        const double ab = std::max(a.arr, b.arr);
        next[c].push_back({out.s, std::max(ab + kFaS, ci.arr + kFaCiS)});
        next[c + 1].push_back({out.co, std::max(ab + kFaCo, ci.arr + kFaCiS)});
      }
      if (remaining() == 2 && col.size() > 2) {
        // Column still above target: finish with a half adder.
        const Sig a = col[taken], b = col[taken + 1];
        taken += 2;
        const auto out = gb.ha(a.net, b.net);
        const double ab = std::max(a.arr, b.arr);
        next[c].push_back({out.s, ab + kHaS});
        next[c + 1].push_back({out.co, ab + kHaCo});
      }
      // Pass through whatever is left (height already <= 2).
      for (; taken < col.size(); ++taken) next[c].push_back(col[taken]);
      // Unconsumed chain carries drop into the next stage's heap.
      for (; chain_used < chain[c].size(); ++chain_used) {
        next[c].push_back(chain[c][chain_used]);
      }
    }
    // Carries chained past the last processed column.
    for (std::size_t c = heap.size(); c < chain.size(); ++c) {
      for (const Sig& s : chain[c]) {
        if (c >= next.size()) next.resize(c + 1);
        next[c].push_back(s);
      }
    }
    while (!next.empty() && next.back().empty()) next.pop_back();
    heap = std::move(next);
  }
  return {std::move(heap)};
}

}  // namespace

netlist::Module gen_adder_tree(const AdderTreeConfig& cfg,
                               const std::string& module_name) {
  if (cfg.rows < 2) {
    throw std::invalid_argument("gen_adder_tree: rows must be >= 2");
  }
  netlist::Module m(module_name);
  GateBuilder gb(m, "t_");
  const auto in = m.add_port_bus("in", netlist::PortDir::kIn, cfg.rows);
  const int k = cfg.sum_bits();

  if (cfg.style == AdderTreeStyle::kRcaTree) {
    // Binary tree of *signed* ripple adders, the conventional DCIM
    // baseline (paper Sec. II-B): every level adds with sign-extended
    // operands, one bit wider than strictly necessary for a popcount, so
    // each level carries the signed-RCA width/depth overhead.
    std::vector<std::vector<NetId>> vals;
    vals.reserve(static_cast<std::size_t>(cfg.rows));
    for (const NetId n : in) vals.push_back({n});
    while (vals.size() > 1) {
      std::vector<std::vector<NetId>> next;
      for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
        const int w = static_cast<int>(std::max(vals[i].size(),
                                                vals[i + 1].size())) +
                      1;  // sign-extension bit
        auto a = gb.zext(vals[i], w);
        auto b = gb.zext(vals[i + 1], w);
        auto add = gb.rca(a, b);
        // Signed adders compute the result MSB through the sign XOR
        // (s = a_sign ^ b_sign ^ carry); with unsigned popcount operands
        // the sign term is constant but the gate — and its serial delay on
        // the top-bit chain — is part of the conventional design.
        add.sum.push_back(gb.xor2(add.cout, gb.c0()));
        // Template-stitched trees (the conventional compiler flow) compose
        // per-level adder blocks with buffered block boundaries, which
        // breaks the carry-overlap a flat ripple chain would enjoy.
        for (NetId& bit : add.sum) bit = gb.buf(bit, "BUFX1");
        next.push_back(std::move(add.sum));
      }
      if (vals.size() % 2 == 1) next.push_back(vals.back());
      vals = std::move(next);
    }
    const auto sum = m.add_port_bus("sum", netlist::PortDir::kOut, k);
    auto result = gb.zext(vals[0], std::max<int>(k, vals[0].size()));
    for (int i = 0; i < k; ++i) {
      // Port nets alias the result by a buffer-free connection: emit a
      // plain BUF to keep single-driver semantics simple and cheap.
      m.add_cell("out_buf_" + std::to_string(i), "BUFX1",
                 {{"A", result[static_cast<std::size_t>(i)]}, {"Y", sum[i]}});
    }
    return m;
  }

  const double fa_frac =
      cfg.style == AdderTreeStyle::kCompressor ? 0.0 : cfg.fa_fraction;
  Heap heap(1);
  heap[0].reserve(static_cast<std::size_t>(cfg.rows));
  for (const NetId n : in) heap[0].push_back({n, 0.0});
  ReductionResult red = reduce_heap(gb, std::move(heap), fa_frac,
                                    cfg.carry_reorder);

  // Assemble the two redundant vectors over the first k columns (higher
  // columns are provably zero for a popcount of `rows` inputs).
  std::vector<NetId> sv, cv;
  for (int c = 0; c < k; ++c) {
    const auto& col = static_cast<std::size_t>(c) < red.heap.size()
                          ? red.heap[static_cast<std::size_t>(c)]
                          : std::vector<Sig>{};
    // Late signal goes to the carry vector (CPA's B input / S&A FA row).
    sv.push_back(col.size() > 0 ? col[0].net : gb.c0());
    cv.push_back(col.size() > 1 ? col[1].net : gb.c0());
  }

  if (cfg.external_cpa) {
    const auto sv_p = m.add_port_bus("sv", netlist::PortDir::kOut, k);
    const auto cv_p = m.add_port_bus("cv", netlist::PortDir::kOut, k);
    for (int i = 0; i < k; ++i) {
      m.add_cell("sv_buf_" + std::to_string(i), "BUFX1",
                 {{"A", sv[static_cast<std::size_t>(i)]}, {"Y", sv_p[i]}});
      m.add_cell("cv_buf_" + std::to_string(i), "BUFX1",
                 {{"A", cv[static_cast<std::size_t>(i)]}, {"Y", cv_p[i]}});
    }
    return m;
  }

  const auto cpa = gb.rca(sv, cv);
  const auto sum = m.add_port_bus("sum", netlist::PortDir::kOut, k);
  for (int i = 0; i < k; ++i) {
    m.add_cell("out_buf_" + std::to_string(i), "BUFX1",
               {{"A", cpa.sum[static_cast<std::size_t>(i)]}, {"Y", sum[i]}});
  }
  return m;
}

int estimate_adder_tree_cells(const AdderTreeConfig& cfg) {
  const int k = cfg.sum_bits();
  if (cfg.style == AdderTreeStyle::kRcaTree) {
    // Sum over levels of pair adders of growing width.
    int cells = 0, count = cfg.rows, width = 1;
    while (count > 1) {
      cells += (count / 2) * width;
      count = (count + 1) / 2;
      ++width;
    }
    return cells + k;
  }
  // Heap reduction does ~rows-2 bit reductions per output column weight;
  // a compressor removes 2 of a column, an FA removes 1.
  const double per_op = cfg.fa_fraction + (1.0 - cfg.fa_fraction) * 2.0;
  return static_cast<int>(cfg.rows * 1.9 / per_op) + k;
}

}  // namespace syndcim::rtlgen

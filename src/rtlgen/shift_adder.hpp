#pragma once
#include "netlist/module.hpp"
#include "rtlgen/arch.hpp"

namespace syndcim::rtlgen {

/// Bit-serial shift-and-add accumulator (paper Sec. II-B, "S&A").
///
/// Input bits are processed MSB-first; each cycle the accumulator computes
///   acc' = (acc << 1) [cleared by clr] +/- psum   (− when neg=1)
/// so after IB cycles acc = sum_t (+/-)psum_t * 2^(IB-1-t), which is the
/// signed dot product for two's-complement serial inputs (neg asserted on
/// the sign-bit cycle, clr on the first cycle).
///
/// Ports:
///   clk, neg, clr                         : controls
///   p[0..psum_bits)                       : completed partial sum, or
///   sv[0..psum_bits), cv[0..psum_bits)    : redundant vectors when
///                                           `redundant_psum` (tt2 retiming:
///                                           the tree's CPA lives here)
///   acc[0..width)                         : accumulator register outputs
struct ShiftAdderConfig {
  int psum_bits = 7;
  int width = 13;
  bool redundant_psum = false;
};

[[nodiscard]] netlist::Module gen_shift_adder(const ShiftAdderConfig& cfg,
                                              const std::string& module_name);

}  // namespace syndcim::rtlgen

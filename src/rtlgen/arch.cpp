#include "rtlgen/arch.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "num/alignment.hpp"

namespace syndcim::rtlgen {

std::string to_string(AdderTreeStyle s) {
  switch (s) {
    case AdderTreeStyle::kRcaTree:
      return "rca_tree";
    case AdderTreeStyle::kCompressor:
      return "compressor_csa";
    case AdderTreeStyle::kMixed:
      return "mixed_csa";
  }
  return "?";
}

std::string to_string(MuxStyle s) {
  switch (s) {
    case MuxStyle::kPassGate1T:
      return "pass_gate_1t";
    case MuxStyle::kTGateNor:
      return "tgate_nor";
    case MuxStyle::kOai22Fused:
      return "oai22_fused";
  }
  return "?";
}

std::string to_string(BitcellKind k) {
  switch (k) {
    case BitcellKind::k6T:
      return "6T";
    case BitcellKind::k8T:
      return "8T";
    case BitcellKind::k12T:
      return "12T";
  }
  return "?";
}

const char* bitcell_cell_name(BitcellKind k) {
  switch (k) {
    case BitcellKind::k6T:
      return "SRAM6T";
    case BitcellKind::k8T:
      return "SRAM8T";
    case BitcellKind::k12T:
      return "SRAM12T";
  }
  throw std::logic_error("bitcell_cell_name: bad kind");
}

namespace {
[[nodiscard]] bool is_pow2(int v) {
  return v > 0 && (v & (v - 1)) == 0;
}
[[nodiscard]] int log2i(int v) {
  return std::bit_width(static_cast<unsigned>(v)) - 1;
}
}  // namespace

int AdderTreeConfig::sum_bits() const {
  // Popcount of `rows` one-bit inputs needs log2(rows)+1 bits.
  return log2i(rows) + 1;
}

int MacroConfig::max_input_bits() const {
  int m = 1;
  for (const int b : input_bits) m = std::max(m, b);
  for (const num::FpFormat& f : fp_formats) {
    m = std::max(m, num::aligned_mant_bits(f, fp_guard_bits));
  }
  return m;
}

int MacroConfig::max_weight_bits() const {
  int m = 1;
  for (const int b : weight_bits) m = std::max(m, b);
  for (const num::FpFormat& f : fp_formats) {
    // Weights are stored pre-aligned with the same mantissa width,
    // sign-extended to the next power-of-two column-group width.
    m = std::max(m, num::aligned_mant_bits(f, fp_guard_bits));
  }
  m = static_cast<int>(std::bit_ceil(static_cast<unsigned>(m)));
  // Weight precision cannot exceed the column count.
  return std::min(m, cols);
}

int MacroConfig::sa_width() const {
  // Split segments are recombined before the S&A, so the partial sum is
  // always log2(rows)+1 bits; signed accumulation over max_input_bits
  // serial slices plus one guard bit.
  return log2i(rows) + 1 + max_input_bits() + 1;
}

void MacroConfig::validate() const {
  if (!is_pow2(rows) || rows < 8 || rows > 1024) {
    throw std::invalid_argument("MacroConfig: rows must be 8..1024, pow2");
  }
  if (!is_pow2(cols) || cols < 8 || cols > 1024) {
    throw std::invalid_argument("MacroConfig: cols must be 8..1024, pow2");
  }
  if (mcr < 1 || mcr > 8 || !is_pow2(mcr)) {
    throw std::invalid_argument("MacroConfig: mcr must be 1,2,4,8");
  }
  if (mux == MuxStyle::kOai22Fused && mcr > 2) {
    // Paper Sec. II-B: the fused OAI22 mux-multiplier does not scale
    // beyond MCR=2.
    throw std::invalid_argument(
        "MacroConfig: OAI22 fused mux style requires MCR <= 2");
  }
  if (input_bits.empty() && fp_formats.empty()) {
    throw std::invalid_argument("MacroConfig: no precisions configured");
  }
  for (const int b : input_bits) {
    if (b < 1 || b > 16) {
      throw std::invalid_argument("MacroConfig: input precision out of range");
    }
  }
  for (const int b : weight_bits) {
    if (b < 1 || b > 16 || !is_pow2(b)) {
      throw std::invalid_argument(
          "MacroConfig: weight precision must be pow2 in 1..16");
    }
    if (b > cols) {
      throw std::invalid_argument("MacroConfig: weight precision > cols");
    }
  }
  if (column_split < 1 || !is_pow2(column_split) ||
      rows / column_split < 8) {
    throw std::invalid_argument(
        "MacroConfig: column_split must be pow2 with >= 8 rows/segment");
  }
  if (pipe.retime_tree_cpa && !pipe.reg_after_tree) {
    throw std::invalid_argument(
        "MacroConfig: retime_tree_cpa requires reg_after_tree");
  }
  if (pipe.retime_tree_cpa && column_split > 1) {
    throw std::invalid_argument(
        "MacroConfig: retime_tree_cpa is incompatible with column_split");
  }
  if (ofu.retime_stage1 && !ofu.input_reg) {
    throw std::invalid_argument(
        "MacroConfig: ofu.retime_stage1 requires ofu.input_reg");
  }
  if (tree.style == AdderTreeStyle::kRcaTree &&
      (tree.external_cpa || pipe.retime_tree_cpa)) {
    throw std::invalid_argument(
        "MacroConfig: RCA tree has no separable final CPA");
  }
  if (tree.fa_fraction < 0.0 || tree.fa_fraction > 1.0) {
    throw std::invalid_argument("MacroConfig: fa_fraction must be in [0,1]");
  }
  if (fp_guard_bits < 0 || fp_guard_bits > 8) {
    throw std::invalid_argument("MacroConfig: fp_guard_bits out of range");
  }
}

}  // namespace syndcim::rtlgen

#include "rtlgen/alignment_unit.hpp"

#include <bit>
#include <stdexcept>

#include "num/alignment.hpp"
#include "rtlgen/gates.hpp"

namespace syndcim::rtlgen {

namespace {
[[nodiscard]] int ceil_log2(int v) {
  return std::bit_width(static_cast<unsigned>(v - 1));
}
}  // namespace

int AlignmentConfig::latency_cycles() const {
  if (!pipelined) return 0;
  const int levels = lanes > 1 ? ceil_log2(lanes) : 0;
  const int lps = levels_per_stage();
  const int tree_stages = levels > 0 ? (levels + lps - 1) / lps : 0;
  // input reg + tree stages + shifter stage + negate/output stage
  return 1 + tree_stages + 2;
}

netlist::Module gen_alignment_unit(const AlignmentConfig& cfg,
                                   const std::string& module_name) {
  if (cfg.lanes < 1) {
    throw std::invalid_argument("gen_alignment_unit: lanes must be >= 1");
  }
  const int eb = cfg.format.exp_bits;
  const int mb = cfg.format.man_bits;
  const int w = mb + 1 + cfg.guard_bits;           // unsigned aligned width
  const int out_w = num::aligned_mant_bits(cfg.format, cfg.guard_bits);
  const int levels = cfg.lanes > 1 ? ceil_log2(cfg.lanes) : 0;
  const int lps = cfg.levels_per_stage();
  const int tree_stages =
      cfg.pipelined && levels > 0 ? (levels + lps - 1) / lps : 0;

  netlist::Module m(module_name);
  GateBuilder gb(m, "al_");
  const NetId clk = cfg.pipelined
                        ? m.add_port("clk", netlist::PortDir::kIn)
                        : NetId{};

  // The shared exponent is declared up front and driven by the comparator
  // tree generated *after* the lane blocks: this keeps each lane's cells
  // contiguous in placement order (input logic, delay registers, shifter,
  // negate), which is how the SDP flow lays the unit out.
  const auto maxe = m.add_bus("maxe_i", eb);

  struct Lane {
    std::vector<NetId> eff_exp;  // subnormal-adjusted exponent (undelayed)
    NetId sgn;
  };
  std::vector<Lane> lanes;
  lanes.reserve(static_cast<std::size_t>(cfg.lanes));

  for (int l = 0; l < cfg.lanes; ++l) {
    const auto exp = m.add_port_bus("exp" + std::to_string(l),
                                    netlist::PortDir::kIn, eb);
    const auto man = m.add_port_bus("man" + std::to_string(l),
                                    netlist::PortDir::kIn, mb);
    const NetId sgn = m.add_port("sgn" + std::to_string(l),
                                 netlist::PortDir::kIn);
    // implicit = OR(exp bits); subnormals use effective exponent 1.
    NetId implicit = exp[0];
    for (int i = 1; i < eb; ++i) {
      implicit = gb.or2(implicit, exp[static_cast<std::size_t>(i)]);
    }
    Lane lane;
    lane.sgn = sgn;
    lane.eff_exp = exp;
    lane.eff_exp[0] = gb.or2(exp[0], gb.inv(implicit));
    // Input register stage: isolates the lane-local decode from the
    // tree's long level-1 wires.
    if (cfg.pipelined) lane.eff_exp = gb.dff_bus(lane.eff_exp, clk);
    lanes.push_back(lane);

    // The input fields are held stable in the operand latches while the
    // tree pipeline settles (the load protocol guarantees it), so the
    // shifter reads them directly — no per-lane delay chains needed.
    const std::vector<NetId>& d_exp = lane.eff_exp;
    std::vector<NetId> d_sig = man;
    d_sig.push_back(implicit);
    NetId d_sgn = sgn;

    // shift = maxe - eff_exp (always >= 0).
    const auto shift = gb.rca(maxe, gb.inv_bus(d_exp), gb.c1()).sum;
    // Widened significand: sig << guard (wiring only).
    std::vector<NetId> val = gb.zext(gb.shl(d_sig, cfg.guard_bits), w);
    // Logarithmic right shifter; stages whose stride exceeds the width
    // flush to zero instead. Stage selects drive a whole word: buffered.
    for (int b = 0; b < eb; ++b) {
      const NetId sb = gb.buf(shift[static_cast<std::size_t>(b)], "BUFX2");
      const int stride = 1 << b;
      if (stride >= w) {
        const NetId nsb = gb.inv(sb);
        val = gb.and_bus(val, nsb);
      } else {
        std::vector<NetId> shifted;
        shifted.reserve(val.size());
        for (int i = 0; i < w; ++i) {
          const NetId hi = (i + stride < w)
                               ? val[static_cast<std::size_t>(i + stride)]
                               : gb.c0();
          shifted.push_back(
              gb.mux2(val[static_cast<std::size_t>(i)], hi, sb));
        }
        val = std::move(shifted);
      }
    }
    // Pipeline boundary between the barrel shifter and the negate stage.
    if (cfg.pipelined) {
      val = gb.dff_bus(val, clk);
      d_sgn = gb.dff(d_sgn, clk);
    }
    // Two's complement: am = sgn ? -val : val  (xor row + increment).
    const NetId sgn_b = gb.buf(d_sgn, "BUFX2");
    auto x = gb.xor_bus(gb.zext(val, out_w), sgn_b);
    std::vector<NetId> am;
    am.reserve(static_cast<std::size_t>(out_w));
    NetId carry = sgn_b;
    for (int i = 0; i < out_w; ++i) {
      const auto h = gb.ha(x[static_cast<std::size_t>(i)], carry);
      am.push_back(h.s);
      carry = h.co;
    }
    if (cfg.pipelined) am = gb.dff_bus(am, clk);  // output register stage
    const auto p = m.add_port_bus("am" + std::to_string(l),
                                  netlist::PortDir::kOut, out_w);
    for (int i = 0; i < out_w; ++i) {
      m.add_cell("am" + std::to_string(l) + "_buf" + std::to_string(i),
                 "BUFX1",
                 {{"A", am[static_cast<std::size_t>(i)]}, {"Y", p[i]}});
    }
  }

  // Comparator (max) tree, pipelined every `lps` levels; one register
  // boundary at the tree's end aligns it with the lane delay chains.
  std::vector<std::vector<NetId>> cur;
  for (const Lane& l : lanes) cur.push_back(l.eff_exp);
  int level = 0;
  int regs_used = 0;
  while (cur.size() > 1) {
    std::vector<std::vector<NetId>> next;
    for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
      const auto nb = gb.inv_bus(cur[i + 1]);
      const NetId ge = gb.rca(cur[i], nb, gb.c1()).cout;
      next.push_back(gb.mux_bus(cur[i + 1], cur[i], ge));
    }
    if (cur.size() % 2 == 1) next.push_back(cur.back());
    cur = std::move(next);
    ++level;
    if (cfg.pipelined && level % lps == 0 && cur.size() > 1) {
      for (auto& bus : cur) bus = gb.dff_bus(bus, clk);
      ++regs_used;
    }
  }
  if (cfg.pipelined) {
    // Pad to exactly tree_stages register boundaries.
    while (regs_used < tree_stages) {
      for (auto& bus : cur) bus = gb.dff_bus(bus, clk);
      ++regs_used;
    }
  }
  // Drive the pre-declared shared-exponent bus (strongly: it fans out to
  // every lane's subtractor).
  const char* drv = cfg.lanes > 32 ? "BUFX16"
                                   : (cfg.lanes > 4 ? "BUFX4" : "BUFX1");
  for (int i = 0; i < eb; ++i) {
    m.add_cell("maxe_drv" + std::to_string(i), drv,
               {{"A", cur[0][static_cast<std::size_t>(i)]},
                {"Y", maxe[static_cast<std::size_t>(i)]}});
  }
  {
    const auto p = m.add_port_bus("maxe", netlist::PortDir::kOut, eb);
    for (int i = 0; i < eb; ++i) {
      m.add_cell("maxe_obuf" + std::to_string(i), "BUFX1",
                 {{"A", maxe[static_cast<std::size_t>(i)]}, {"Y", p[i]}});
    }
  }
  return m;
}

}  // namespace syndcim::rtlgen

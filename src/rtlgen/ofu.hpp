#pragma once
#include "netlist/module.hpp"
#include "rtlgen/arch.hpp"

namespace syndcim::rtlgen {

/// Output Fusion Unit: fuses the S&A results of `group_cols` adjacent
/// weight-bit columns into multi-bit-weight MAC results, stage by stage
/// from lower to higher weight precision (paper Sec. II-B).
///
/// Stage s (1-based) combines adjacent sub-results with
///     out = lo + (hi << 2^(s-1))          when the active weight
///     out = lo - (hi << 2^(s-1))          precision equals 2^s (the hi
///                                         block is then the two's-
///                                         complement sign column group)
/// controlled by the one-hot `mode[s-1]` input.
///
/// Ports:
///   clk, cap                 : capture enable for the input register
///   mode[0..n_stages)        : one-hot subtract select (see above)
///   r{j}[0..col_width)       : S&A result of column j, j < group_cols
///   s{s}_r{j}[...]           : fused result of sub-group j at stage s
///                              (stage 0 = captured inputs); all stages are
///                              exposed so every supported precision has a
///                              tap.
struct OfuModuleConfig {
  int group_cols = 8;  ///< max weight precision fused by this unit
  int col_width = 13;  ///< S&A accumulator width
  OfuConfig arrangement = {};

  [[nodiscard]] int n_stages() const;
  /// Width of a stage-s result (s=0 -> col_width).
  [[nodiscard]] int stage_width(int s) const;
  /// True if stage s's output goes through a tt5 pipeline register.
  [[nodiscard]] bool stage_registered(int s) const;
  /// Number of pipeline registers a value crosses to reach stage `s`'s
  /// exposed output (excluding the input capture register).
  [[nodiscard]] int regs_through(int s) const;
};

[[nodiscard]] netlist::Module gen_ofu(const OfuModuleConfig& cfg,
                                      const std::string& module_name);

}  // namespace syndcim::rtlgen

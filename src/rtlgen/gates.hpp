#pragma once
#include <string>
#include <vector>

#include "netlist/module.hpp"

namespace syndcim::rtlgen {

using netlist::Conn;
using netlist::Module;
using netlist::NetId;

/// Convenience layer for emitting gates into a Module with unique instance
/// names. Word-level helpers implement the shared datapath idioms (ripple
/// adders, add/sub, registers, mux trees); shifts and sign extension are
/// pure wiring and cost no gates.
class GateBuilder {
 public:
  GateBuilder(Module& m, std::string prefix) : m_(m), prefix_(std::move(prefix)) {}

  [[nodiscard]] Module& module() { return m_; }
  [[nodiscard]] NetId c0() { return m_.const0(); }
  [[nodiscard]] NetId c1() { return m_.const1(); }

  // --- single-gate helpers (return the output net) ---
  NetId inv(NetId a, const std::string& cell = "INVX1");
  NetId buf(NetId a, const std::string& cell = "BUFX4");
  NetId and2(NetId a, NetId b, const std::string& cell = "AND2X1");
  NetId or2(NetId a, NetId b, const std::string& cell = "OR2X1");
  NetId nand2(NetId a, NetId b, const std::string& cell = "NAND2X1");
  NetId nor2(NetId a, NetId b, const std::string& cell = "NOR2X1");
  NetId xor2(NetId a, NetId b, const std::string& cell = "XOR2X1");
  NetId mux2(NetId a, NetId b, NetId s, const std::string& cell = "MUX2X1");
  NetId oai22(NetId a, NetId b, NetId c, NetId d);

  struct HaOut {
    NetId s, co;
  };
  HaOut ha(NetId a, NetId b);
  struct FaOut {
    NetId s, co;
  };
  FaOut fa(NetId a, NetId b, NetId ci, const std::string& cell = "FAX1");
  struct CmpOut {
    NetId s, c, cout;
  };
  CmpOut cmp42(NetId a, NetId b, NetId c, NetId d, NetId cin,
               const std::string& cell = "CMP42X1");

  NetId dff(NetId d, NetId clk, const std::string& cell = "DFFX1");
  NetId dffe(NetId d, NetId e, NetId clk);

  // --- word-level helpers ---
  std::vector<NetId> dff_bus(const std::vector<NetId>& d, NetId clk);
  std::vector<NetId> dffe_bus(const std::vector<NetId>& d, NetId e,
                              NetId clk);
  std::vector<NetId> inv_bus(const std::vector<NetId>& a);
  /// Per-bit XOR with one control net (conditional invert for add/sub).
  std::vector<NetId> xor_bus(const std::vector<NetId>& a, NetId ctrl);
  std::vector<NetId> and_bus(const std::vector<NetId>& a, NetId ctrl);
  std::vector<NetId> mux_bus(const std::vector<NetId>& a,
                             const std::vector<NetId>& b, NetId s);

  struct AddOut {
    std::vector<NetId> sum;
    NetId cout;
  };
  /// Ripple-carry add; operands must have equal width (extend first).
  /// `cin` may be invalid (treated as 0; the first stage then uses an HA).
  AddOut rca(const std::vector<NetId>& a, const std::vector<NetId>& b,
             NetId cin = NetId{}, const std::string& fa_cell = "FAX1");
  /// a + (b ^ sub) + sub : add/sub under control of `sub`.
  AddOut add_sub(const std::vector<NetId>& a, const std::vector<NetId>& b,
                 NetId sub, const std::string& fa_cell = "FAX1");

  /// Carry-select adder: 4-bit ripple blocks computed for both carry
  /// values, selected by a fast mux chain. ~2x the area of an RCA but the
  /// carry crosses each block in one mux delay — used for the wide S&A
  /// and OFU adders.
  AddOut csel(const std::vector<NetId>& a, const std::vector<NetId>& b,
              NetId cin = NetId{}, int block = 4);
  /// add/sub on the carry-select adder.
  AddOut add_sub_fast(const std::vector<NetId>& a,
                      const std::vector<NetId>& b, NetId sub);

  /// Width threshold above which the datapath generators switch from
  /// ripple to carry-select adders.
  static constexpr int kFastAdderWidth = 12;

  // --- wiring-only helpers ---
  /// Sign-extend by repeating the MSB net (no gates).
  static std::vector<NetId> sext(const std::vector<NetId>& a, int width);
  /// Zero-extend with the module's const0.
  std::vector<NetId> zext(const std::vector<NetId>& a, int width);
  /// Shift left by k: k zeros below (drops nothing).
  std::vector<NetId> shl(const std::vector<NetId>& a, int k);

 private:
  std::string uniq(const char* stem);
  Module& m_;
  std::string prefix_;
  int counter_ = 0;
};

}  // namespace syndcim::rtlgen

#pragma once
#include "netlist/module.hpp"
#include "rtlgen/arch.hpp"

namespace syndcim::rtlgen {

/// Generates a combinational adder tree that sums `cfg.rows` one-bit
/// partial products.
///
/// Ports:
///   in[0..rows)            : product bits
///   sum[0..sum_bits)       : completed sum         (external_cpa = false)
///   sv[0..sum_bits), cv[.] : redundant carry-save vectors with
///                            sv + cv == popcount   (external_cpa = true)
///
/// Styles:
///  - kRcaTree:    binary tree of ripple-carry adders (the conventional
///                 baseline the paper compares against);
///  - kCompressor: Wallace-style bit-heap reduction using 4-2 compressors
///                 with an intra-stage COUT->CIN chain, FAs/HAs for the
///                 remainder, and a final ripple CPA;
///  - kMixed:      same, but a `fa_fraction` share of the 4-bit reduction
///                 ops use full adders instead of compressors, trading
///                 power/area for a shorter critical path.
///
/// With `carry_reorder`, signals within a heap column are assigned to
/// compressor/FA input ports by estimated arrival time: late signals go to
/// the fast late ports (D/CIN/CI), early signals to the slow ports.
[[nodiscard]] netlist::Module gen_adder_tree(const AdderTreeConfig& cfg,
                                             const std::string& module_name);

/// Rough cell count estimate used by the subcircuit library before
/// elaboration (compressors + FAs + HAs + CPA).
[[nodiscard]] int estimate_adder_tree_cells(const AdderTreeConfig& cfg);

}  // namespace syndcim::rtlgen

#pragma once
#include "netlist/module.hpp"
#include "num/fp_format.hpp"

namespace syndcim::rtlgen {

/// FP&INT Alignment Unit (paper Sec. II-B): converts a group of `lanes`
/// floating-point inputs into integer mantissas against the group's
/// maximum exponent, via a comparator (max) tree, per-lane exponent
/// subtractors, right barrel shifters and two's-complement conversion.
/// Matches the behavioral reference num::align_fp_group (truncating
/// shifts, flush on overshift, subnormal support).
///
/// Ports (combinational):
///   exp{l}[exp_bits], man{l}[man_bits], sgn{l}  : lane l input fields
///   am{l}[0..aligned_mant_bits)                 : aligned signed mantissa
///   maxe[exp_bits]                              : shared (effective) exponent
struct AlignmentConfig {
  num::FpFormat format = num::kFp8;
  int lanes = 64;
  int guard_bits = 2;
  /// Pipeline the comparator tree and shifter (adds a clk port and
  /// matching lane-delay registers); required for wide arrays where the
  /// whole unit cannot settle in one MAC cycle.
  bool pipelined = false;

  /// Comparator-tree levels registered per pipeline stage (wide exponents
  /// and wide arrays need a register every level: the level-to-level
  /// wiring spans the whole lane block).
  [[nodiscard]] int levels_per_stage() const {
    return (format.exp_bits >= 6 || lanes > 16) ? 1 : 2;
  }
  /// Total register stages between inputs and the aligned outputs
  /// (0 when not pipelined).
  [[nodiscard]] int latency_cycles() const;
};

[[nodiscard]] netlist::Module gen_alignment_unit(
    const AlignmentConfig& cfg, const std::string& module_name);

}  // namespace syndcim::rtlgen

#include "rtlgen/ofu.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "rtlgen/gates.hpp"

namespace syndcim::rtlgen {

namespace {
[[nodiscard]] int log2i(int v) {
  return std::bit_width(static_cast<unsigned>(v)) - 1;
}
}  // namespace

int OfuModuleConfig::n_stages() const { return log2i(group_cols); }

int OfuModuleConfig::stage_width(int s) const {
  return s == 0 ? col_width : col_width + (1 << s);
}

bool OfuModuleConfig::stage_registered(int s) const {
  const int n = n_stages();
  const int p = std::min(arrangement.pipeline_regs, n);
  const int first = arrangement.retime_stage1 ? 2 : 1;
  return s >= first && (n - s) < p;
}

int OfuModuleConfig::regs_through(int s) const {
  int r = 0;
  for (int k = 1; k <= s; ++k) r += stage_registered(k) ? 1 : 0;
  return r;
}

netlist::Module gen_ofu(const OfuModuleConfig& cfg,
                        const std::string& module_name) {
  if (cfg.group_cols < 1 || (cfg.group_cols & (cfg.group_cols - 1)) != 0) {
    throw std::invalid_argument("gen_ofu: group_cols must be a power of 2");
  }
  if (cfg.col_width < 2) {
    throw std::invalid_argument("gen_ofu: col_width too small");
  }
  netlist::Module m(module_name);
  GateBuilder gb(m, "ofu_");
  const int n = cfg.n_stages();
  const NetId clk = m.add_port("clk", netlist::PortDir::kIn);
  const NetId cap_pin = m.add_port("cap", netlist::PortDir::kIn);
  // Capture enable fans out to every DFFE in the group: buffer tree.
  const NetId cap = gb.buf(cap_pin, "BUFX8");
  std::vector<NetId> mode;
  if (n > 0) mode = m.add_port_bus("mode", netlist::PortDir::kIn, n);

  std::vector<std::vector<NetId>> raw(
      static_cast<std::size_t>(cfg.group_cols));
  for (int j = 0; j < cfg.group_cols; ++j) {
    raw[static_cast<std::size_t>(j)] = m.add_port_bus(
        "r" + std::to_string(j), netlist::PortDir::kIn, cfg.col_width);
  }

  auto expose = [&](int s, int j, const std::vector<NetId>& bus) {
    const std::string base = "s" + std::to_string(s) + "_r" +
                             std::to_string(j);
    const auto ports = m.add_port_bus(base, netlist::PortDir::kOut,
                                      static_cast<int>(bus.size()));
    for (std::size_t i = 0; i < bus.size(); ++i) {
      m.add_cell(base + "_buf" + std::to_string(i), "BUFX1",
                 {{"A", bus[i]}, {"Y", ports[i]}});
    }
  };

  // Stage-1 subtract control for pair j: the hi element r_{2j+1} is the
  // two's-complement sign column of a precision-2^s weight group iff
  // (j+1) is a multiple of 2^(s-1); the controls OR the applicable
  // one-hot mode bits. Stages >= 2 combine already-signed sub-results and
  // always add.
  auto stage1_sub = [&](int j) -> NetId {
    NetId sub;  // invalid = constant 0
    for (int s = 1; s <= n; ++s) {
      const int half = 1 << (s - 1);
      if ((j + 1) % half != 0) continue;
      const NetId m_bit = mode[static_cast<std::size_t>(s - 1)];
      sub = sub.valid() ? gb.or2(sub, m_bit) : m_bit;
    }
    return sub.valid() ? sub : gb.c0();
  };

  auto fuse = [&](const std::vector<NetId>& lo, const std::vector<NetId>& hi,
                  int s, NetId sub) {
    const int w = cfg.stage_width(s);
    const bool fast = w >= GateBuilder::kFastAdderWidth;
    const auto lo_e = GateBuilder::sext(lo, w);
    const auto hi_e = GateBuilder::sext(gb.shl(hi, 1 << (s - 1)), w);
    if (sub.valid()) {
      // The subtract control fans out across the whole word: buffer it.
      const NetId sb = gb.buf(sub, "BUFX2");
      return (fast ? gb.add_sub_fast(lo_e, hi_e, sb)
                   : gb.add_sub(lo_e, hi_e, sb))
          .sum;
    }
    return (fast ? gb.csel(lo_e, hi_e) : gb.rca(lo_e, hi_e)).sum;
  };

  const OfuConfig& a = cfg.arrangement;
  std::vector<std::vector<NetId>> vals;
  int first_stage = 1;

  if (a.retime_stage1 && n >= 1) {
    // Stage 1 computed in the S&A clock stage, then captured.
    for (int j = 0; j < cfg.group_cols; ++j) {
      expose(0, j, raw[static_cast<std::size_t>(j)]);  // uncaptured tap
    }
    for (int j = 0; j < cfg.group_cols / 2; ++j) {
      auto sum = fuse(raw[static_cast<std::size_t>(2 * j)],
                      raw[static_cast<std::size_t>(2 * j + 1)], 1,
                      stage1_sub(j));
      vals.push_back(gb.dffe_bus(sum, gb.buf(cap, "BUFX2"), clk));
      expose(1, j, vals.back());
    }
    first_stage = 2;
  } else {
    for (int j = 0; j < cfg.group_cols; ++j) {
      std::vector<NetId> v = raw[static_cast<std::size_t>(j)];
      if (a.input_reg) v = gb.dffe_bus(v, gb.buf(cap, "BUFX2"), clk);
      expose(0, j, v);
      vals.push_back(std::move(v));
    }
  }

  for (int s = first_stage; s <= n; ++s) {
    std::vector<std::vector<NetId>> next;
    for (std::size_t j = 0; j + 1 < vals.size(); j += 2) {
      auto sum = fuse(vals[j], vals[j + 1], s,
                      s == 1 ? stage1_sub(static_cast<int>(j / 2)) : NetId{});
      if (cfg.stage_registered(s)) sum = gb.dff_bus(sum, clk);
      expose(s, static_cast<int>(j / 2), sum);
      next.push_back(std::move(sum));
    }
    vals = std::move(next);
  }
  return m;
}

}  // namespace syndcim::rtlgen

#include "rtlgen/shift_adder.hpp"

#include <stdexcept>

#include "rtlgen/gates.hpp"

namespace syndcim::rtlgen {

netlist::Module gen_shift_adder(const ShiftAdderConfig& cfg,
                                const std::string& module_name) {
  if (cfg.psum_bits < 1 || cfg.width <= cfg.psum_bits) {
    throw std::invalid_argument("gen_shift_adder: bad widths");
  }
  netlist::Module m(module_name);
  GateBuilder gb(m, "sa_");
  const NetId clk = m.add_port("clk", netlist::PortDir::kIn);
  const NetId neg = m.add_port("neg", netlist::PortDir::kIn);
  const NetId clr = m.add_port("clr", netlist::PortDir::kIn);
  const auto acc_out = m.add_port_bus("acc", netlist::PortDir::kOut,
                                      cfg.width);
  const int w = cfg.width;

  // The accumulator register bank: nets declared first so the shifted
  // feedback can reference them; DFFs added at the end.
  const auto acc = m.add_bus("acc_q", w);
  // Control signals fan out across the whole word: buffer them.
  const NetId negb = gb.buf(neg, "BUFX4");
  const NetId nclr = gb.inv(clr, "INVX4");

  // Shifted, clear-gated accumulator: V1[i] = acc[i-1] & ~clr; V1[0] is 0
  // in the plain form and carries the +neg injection in the redundant one.
  std::vector<NetId> v1;
  v1.reserve(static_cast<std::size_t>(w));
  v1.push_back(gb.c0());  // placeholder, fixed below per variant
  for (int i = 1; i < w; ++i) {
    v1.push_back(gb.and2(acc[static_cast<std::size_t>(i - 1)], nclr));
  }

  std::vector<NetId> next;
  if (!cfg.redundant_psum) {
    const auto p = m.add_port_bus("p", netlist::PortDir::kIn, cfg.psum_bits);
    // acc' = V1 + (zext(p) ^ neg) + neg   (add/sub); carry-select for
    // wide accumulators.
    const auto b = gb.zext(p, w);
    next = w >= GateBuilder::kFastAdderWidth
               ? gb.add_sub_fast(v1, b, negb).sum
               : gb.add_sub(v1, b, negb).sum;
  } else {
    const auto sv = m.add_port_bus("sv", netlist::PortDir::kIn,
                                   cfg.psum_bits);
    const auto cv = m.add_port_bus("cv", netlist::PortDir::kIn,
                                   cfg.psum_bits);
    // -(sv+cv) = (~sv) + (~cv) + 2, so with conditional inversion the
    // two +neg injections land at bit 0: one in the FA row's free slot
    // (V1[0] is the shifted-in zero) and one as the CPA's B[0].
    v1[0] = negb;
    const auto v2 = gb.xor_bus(gb.zext(sv, w), negb);
    const auto v3 = gb.xor_bus(gb.zext(cv, w), negb);
    std::vector<NetId> s_row, c_row;
    s_row.reserve(static_cast<std::size_t>(w));
    c_row.reserve(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      const auto f = gb.fa(v1[static_cast<std::size_t>(i)],
                           v2[static_cast<std::size_t>(i)],
                           v3[static_cast<std::size_t>(i)]);
      s_row.push_back(f.s);
      c_row.push_back(f.co);
    }
    std::vector<NetId> b;
    b.reserve(static_cast<std::size_t>(w));
    b.push_back(negb);
    for (int i = 0; i + 1 < w; ++i) {
      b.push_back(c_row[static_cast<std::size_t>(i)]);
    }
    next = w >= GateBuilder::kFastAdderWidth ? gb.csel(s_row, b).sum
                                             : gb.rca(s_row, b).sum;
  }

  for (int i = 0; i < w; ++i) {
    m.add_cell("acc_reg_" + std::to_string(i), "DFFX1",
               {{"D", next[static_cast<std::size_t>(i)]},
                {"CK", clk},
                {"Q", acc[static_cast<std::size_t>(i)]}});
    // Strong output buffer: the accumulator crosses the array to the OFU.
    m.add_cell("acc_obuf_" + std::to_string(i), "BUFX4",
               {{"A", acc[static_cast<std::size_t>(i)]},
                {"Y", acc_out[static_cast<std::size_t>(i)]}});
  }
  return m;
}

}  // namespace syndcim::rtlgen

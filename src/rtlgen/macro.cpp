#include "rtlgen/macro.hpp"

#include <bit>
#include <stdexcept>

#include "num/alignment.hpp"
#include "rtlgen/adder_tree.hpp"
#include "rtlgen/alignment_unit.hpp"
#include "rtlgen/content_key.hpp"
#include "rtlgen/drivers.hpp"
#include "rtlgen/gates.hpp"
#include "rtlgen/ofu.hpp"
#include "rtlgen/shift_adder.hpp"

namespace syndcim::rtlgen {

using netlist::Conn;
using netlist::Module;
using netlist::NetId;
using netlist::PortDir;

namespace {

[[nodiscard]] int log2i(int v) {
  return std::bit_width(static_cast<unsigned>(v)) - 1;
}

/// Distribution buffer tree for a control signal fanning out to `n`
/// consumers: returns one leaf net per consumer, 8 consumers per leaf
/// buffer, with a strong root buffer above 8 leaves.
[[nodiscard]] std::vector<NetId> distribute(GateBuilder& gb, NetId src,
                                            int n) {
  const int n_leaves = (n + 7) / 8;
  const NetId root = n_leaves > 1 ? gb.buf(src, "BUFX16") : src;
  std::vector<NetId> leaves;
  leaves.reserve(static_cast<std::size_t>(n_leaves));
  for (int i = 0; i < n_leaves; ++i) leaves.push_back(gb.buf(root, "BUFX8"));
  std::vector<NetId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(leaves[static_cast<std::size_t>(i / 8)]);
  }
  return out;
}

/// Picks the widest configured FP format (the alignment unit is sized for
/// it; narrower formats embed into it).
[[nodiscard]] const num::FpFormat* widest_fp(const MacroConfig& cfg) {
  const num::FpFormat* best = nullptr;
  for (const num::FpFormat& f : cfg.fp_formats) {
    if (!best || f.storage_bits() > best->storage_bits()) best = &f;
  }
  return best;
}

/// Builds the per-column module: bitcells, mux+multiplier, adder tree
/// segment(s), segment combiner, optional tree register and the S&A.
Module gen_column(const MacroConfig& cfg, const std::string& tree_mod,
                  const std::string& sa_mod) {
  Module m("dcim_col");
  GateBuilder gb(m, "c_");
  const int rows = cfg.rows;
  const int mcr = cfg.mcr;
  const int split = cfg.column_split;
  const int seg_rows = cfg.segment_rows();
  const int seg_bits = log2i(seg_rows) + 1;
  const int k = log2i(rows) + 1;
  const int w = cfg.sa_width();

  const NetId clk = m.add_port("clk", PortDir::kIn);
  const NetId neg = m.add_port("neg", PortDir::kIn);
  const NetId clr = m.add_port("clr", PortDir::kIn);
  const NetId wdata = m.add_port("wdata", PortDir::kIn);
  const auto act = m.add_port_bus("act", PortDir::kIn, rows);
  const auto wl = m.add_port_bus("wl", PortDir::kIn, rows * mcr);
  const auto acc = m.add_port_bus("acc", PortDir::kOut, w);

  const bool oai = cfg.mux == MuxStyle::kOai22Fused;
  std::vector<NetId> gseln, bsel;
  if (oai) {
    gseln = m.add_port_bus("gseln", PortDir::kIn, rows * mcr);
  } else if (mcr > 1) {
    bsel = m.add_port_bus("bsel", PortDir::kIn, log2i(mcr));
  }

  // Bitcells + per-row mux/multiplier.
  const char* bitcell = bitcell_cell_name(cfg.bitcell);
  std::vector<NetId> products;
  products.reserve(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    std::vector<NetId> q;
    q.reserve(static_cast<std::size_t>(mcr));
    for (int b = 0; b < mcr; ++b) {
      const NetId qn = m.add_net("q_" + std::to_string(r) + "_" +
                                 std::to_string(b));
      m.add_cell("cell_" + std::to_string(r) + "_" + std::to_string(b),
                 bitcell,
                 {{"WL", wl[static_cast<std::size_t>(r * mcr + b)]},
                  {"D", wdata},
                  {"Q", qn}});
      q.push_back(qn);
    }
    NetId p;
    if (oai) {
      if (mcr == 2) {
        p = gb.oai22(q[0], gseln[static_cast<std::size_t>(r * 2)], q[1],
                     gseln[static_cast<std::size_t>(r * 2 + 1)]);
      } else {  // mcr == 1
        p = gb.nor2(q[0], gseln[static_cast<std::size_t>(r)]);
      }
    } else {
      // Binary mux tree of TG or pass-gate 2:1 cells.
      const std::string mux_cell =
          cfg.mux == MuxStyle::kPassGate1T ? "PGMUXX1" : "TGMUXX1";
      std::vector<NetId> level = q;
      int sel_bit = 0;
      while (level.size() > 1) {
        std::vector<NetId> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
          next.push_back(gb.mux2(level[i], level[i + 1],
                                 bsel[static_cast<std::size_t>(sel_bit)],
                                 mux_cell));
        }
        if (level.size() % 2 == 1) next.push_back(level.back());
        level = std::move(next);
        ++sel_bit;
      }
      p = gb.and2(act[r], level[0]);
    }
    products.push_back(p);
  }

  // Adder tree segment instances (tree module exposes sv/cv when the CPA
  // is retimed into the S&A).
  const bool redundant = cfg.pipe.retime_tree_cpa;
  std::vector<std::vector<NetId>> seg_sums;
  std::vector<NetId> sv, cv;
  for (int s = 0; s < split; ++s) {
    std::vector<Conn> conns;
    for (int i = 0; i < seg_rows; ++i) {
      conns.push_back(
          {netlist::bus_name("in", i),
           products[static_cast<std::size_t>(s * seg_rows + i)]});
    }
    if (redundant) {
      sv = m.add_bus("sv" + std::to_string(s), seg_bits);
      cv = m.add_bus("cv" + std::to_string(s), seg_bits);
      for (int i = 0; i < seg_bits; ++i) {
        conns.push_back({netlist::bus_name("sv", i),
                         sv[static_cast<std::size_t>(i)]});
        conns.push_back({netlist::bus_name("cv", i),
                         cv[static_cast<std::size_t>(i)]});
      }
    } else {
      auto sum = m.add_bus("tsum" + std::to_string(s), seg_bits);
      for (int i = 0; i < seg_bits; ++i) {
        conns.push_back({netlist::bus_name("sum", i),
                         sum[static_cast<std::size_t>(i)]});
      }
      seg_sums.push_back(std::move(sum));
    }
    m.add_submodule("tree_seg" + std::to_string(s), tree_mod,
                    std::move(conns));
  }

  // Segment combiner (tt3 column split): binary RCA tree in the S&A stage.
  std::vector<NetId> psum;
  if (!redundant) {
    std::vector<std::vector<NetId>> vals = std::move(seg_sums);
    while (vals.size() > 1) {
      std::vector<std::vector<NetId>> next;
      for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
        const int ww = static_cast<int>(vals[i].size());
        auto add = gb.rca(gb.zext(vals[i], ww), gb.zext(vals[i + 1], ww));
        add.sum.push_back(add.cout);
        next.push_back(std::move(add.sum));
      }
      if (vals.size() % 2 == 1) next.push_back(vals.back());
      vals = std::move(next);
    }
    psum = gb.zext(vals[0], k);
  }

  // Pipeline register between tree and S&A (+ matched control delays).
  NetId neg_c = neg, clr_c = clr;
  if (cfg.pipe.reg_after_tree) {
    neg_c = gb.dff(neg, clk);
    clr_c = gb.dff(clr, clk);
    if (redundant) {
      sv = gb.dff_bus(sv, clk);
      cv = gb.dff_bus(cv, clk);
    } else {
      psum = gb.dff_bus(psum, clk);
    }
  }

  // Split happens before the combiner, so psum is k bits; the redundant
  // form keeps the segment width (split==1 enforced by validate()).
  std::vector<Conn> sa_conns = {
      {"clk", clk}, {"neg", neg_c}, {"clr", clr_c}};
  if (redundant) {
    for (int i = 0; i < seg_bits; ++i) {
      sa_conns.push_back({netlist::bus_name("sv", i),
                          sv[static_cast<std::size_t>(i)]});
      sa_conns.push_back({netlist::bus_name("cv", i),
                          cv[static_cast<std::size_t>(i)]});
    }
  } else {
    for (int i = 0; i < k; ++i) {
      sa_conns.push_back({netlist::bus_name("p", i),
                          psum[static_cast<std::size_t>(i)]});
    }
  }
  for (int i = 0; i < w; ++i) {
    sa_conns.push_back({netlist::bus_name("acc", i), acc[i]});
  }
  m.add_submodule("sa", sa_mod, std::move(sa_conns));
  return m;
}

}  // namespace

std::vector<std::string> MacroDesign::static_control_ports() const {
  std::vector<std::string> out;
  const bool oai = cfg.mux == MuxStyle::kOai22Fused;
  if (oai) {
    for (int k = 0; k < cfg.mcr; ++k) {
      out.push_back(netlist::bus_name("selh", k));
    }
  } else if (cfg.mcr > 1) {
    for (int i = 0; i < log2i(cfg.mcr); ++i) {
      out.push_back(netlist::bus_name("bsel", i));
    }
  }
  const OfuModuleConfig ocfg{cfg.max_weight_bits(), cfg.sa_width(), cfg.ofu};
  for (int s = 0; s < ocfg.n_stages(); ++s) {
    out.push_back(netlist::bus_name("mode", s));
  }
  if (!cfg.fp_formats.empty()) out.push_back("fp_sel");
  return out;
}

int MacroDesign::align_latency() const {
  if (cfg.fp_formats.empty()) return 0;
  const num::FpFormat* fp = widest_fp(cfg);
  AlignmentConfig acfg{*fp, cfg.rows, cfg.fp_guard_bits, /*pipelined=*/true};
  return acfg.latency_cycles();
}

int MacroDesign::ofu_valid_cycle(int input_bits, int stage) const {
  const int acc_ready = sa_done_cycles(input_bits) + 1;
  if (!cfg.ofu.input_reg) return acc_ready;  // combinational OFU
  // Captured at the end of acc_ready; registered outputs valid next
  // cycle, plus one more per tt5 pipeline register on the way.
  const OfuModuleConfig ocfg{cfg.max_weight_bits(), cfg.sa_width(), cfg.ofu};
  return acc_ready + 1 + ocfg.regs_through(stage);
}

MacroDesign gen_macro(const MacroConfig& cfg) {
  return gen_macro(cfg, nullptr);
}

MacroDesign gen_macro(const MacroConfig& cfg, ModuleCache* modules) {
  cfg.validate();
  MacroDesign md;
  md.cfg = cfg;

  const int rows = cfg.rows, cols = cfg.cols, mcr = cfg.mcr;
  const int ib_max = cfg.max_input_bits();
  const int wp_max = cfg.max_weight_bits();
  const int w = cfg.sa_width();
  const num::FpFormat* fp = widest_fp(cfg);
  const int am_bits =
      fp ? num::aligned_mant_bits(*fp, cfg.fp_guard_bits) : 0;

  // Emits one subcircuit module under its content key: served from the
  // module tier when available, generated (and published) otherwise.
  const auto emit = [&](const std::string& name, const std::string& key,
                        auto&& gen) {
    const std::string full = key + "|" + name;
    md.module_keys.emplace(name, full);
    if (modules) {
      if (const auto hit = modules->find(full)) {
        md.design.add_module(*hit);
        return;
      }
      Module m = gen();
      modules->put(full, m);
      md.design.add_module(std::move(m));
      return;
    }
    md.design.add_module(gen());
  };

  // --- subcircuit modules ---
  AdderTreeConfig tcfg = cfg.tree;
  tcfg.rows = cfg.segment_rows();
  tcfg.external_cpa = cfg.pipe.retime_tree_cpa;
  emit("tree", tree_content_key(tcfg),
       [&] { return gen_adder_tree(tcfg, "tree"); });

  ShiftAdderConfig scfg;
  scfg.psum_bits = cfg.pipe.retime_tree_cpa ? tcfg.sum_bits()
                                            : log2i(rows) + 1;
  scfg.width = w;
  scfg.redundant_psum = cfg.pipe.retime_tree_cpa;
  emit("sa", shift_adder_content_key(scfg),
       [&] { return gen_shift_adder(scfg, "sa"); });

  OfuModuleConfig ocfg{wp_max, w, cfg.ofu};
  emit("ofu_g", ofu_content_key(ocfg), [&] { return gen_ofu(ocfg, "ofu_g"); });

  WlDriverConfig wcfg{rows, ib_max, am_bits, mcr,
                      cfg.mux == MuxStyle::kOai22Fused, cols};
  emit("wldrv", wl_driver_content_key(wcfg),
       [&] { return gen_wl_driver(wcfg, "wldrv"); });

  WritePortConfig pcfg{rows, cols, mcr,
                       cfg.mux == MuxStyle::kOai22Fused};
  emit("wrport", write_port_content_key(pcfg),
       [&] { return gen_write_port(pcfg, "wrport"); });

  if (fp) {
    AlignmentConfig acfg{*fp, rows, cfg.fp_guard_bits, /*pipelined=*/true};
    emit("align", alignment_content_key(acfg),
         [&] { return gen_alignment_unit(acfg, "align"); });
  }

  // The column module references tree/sa by name.
  emit("dcim_col", column_content_key(cfg),
       [&] { return gen_column(cfg, "tree", "sa"); });

  // --- top ---
  const std::string top_key =
      "top1-" + config_content_key(cfg) + "|" + md.top;
  md.module_keys.emplace(md.top, top_key);
  if (modules) {
    if (const auto hit = modules->find(top_key)) {
      md.design.add_module(*hit);
      return md;
    }
  }
  Module top(md.top);
  const NetId clk = top.add_port("clk", PortDir::kIn);
  const NetId neg = top.add_port("neg", PortDir::kIn);
  const NetId clr = top.add_port("clr", PortDir::kIn);
  const NetId cap = top.add_port("cap", PortDir::kIn);
  const NetId load = top.add_port("load", PortDir::kIn);
  const int n_stages = ocfg.n_stages();
  std::vector<NetId> mode;
  if (n_stages > 0) mode = top.add_port_bus("mode", PortDir::kIn, n_stages);
  const NetId wen = top.add_port("wen", PortDir::kIn);
  const auto waddr = top.add_port_bus("waddr", PortDir::kIn, log2i(rows));
  std::vector<NetId> wbank;
  if (mcr > 1) wbank = top.add_port_bus("wbank", PortDir::kIn, log2i(mcr));
  const auto wd = top.add_port_bus("wd", PortDir::kIn, cols);

  const bool oai = cfg.mux == MuxStyle::kOai22Fused;
  std::vector<NetId> selh, bsel;
  if (oai) {
    selh = top.add_port_bus("selh", PortDir::kIn, mcr);
  } else if (mcr > 1) {
    bsel = top.add_port_bus("bsel", PortDir::kIn, log2i(mcr));
  }
  NetId fp_sel;
  if (fp) fp_sel = top.add_port("fp_sel", PortDir::kIn);

  // Alignment unit.
  std::vector<std::vector<NetId>> am_nets;
  if (fp) {
    std::vector<Conn> conns = {{"clk", clk}};
    for (int r = 0; r < rows; ++r) {
      const auto fe = top.add_port_bus("fexp" + std::to_string(r),
                                       PortDir::kIn, fp->exp_bits);
      const auto fm = top.add_port_bus("fman" + std::to_string(r),
                                       PortDir::kIn, fp->man_bits);
      const NetId fs = top.add_port("fsgn" + std::to_string(r), PortDir::kIn);
      for (int i = 0; i < fp->exp_bits; ++i) {
        conns.push_back({netlist::bus_name("exp" + std::to_string(r), i),
                         fe[static_cast<std::size_t>(i)]});
      }
      for (int i = 0; i < fp->man_bits; ++i) {
        conns.push_back({netlist::bus_name("man" + std::to_string(r), i),
                         fm[static_cast<std::size_t>(i)]});
      }
      conns.push_back({"sgn" + std::to_string(r), fs});
      std::vector<NetId> am;
      for (int i = 0; i < am_bits; ++i) {
        am.push_back(top.add_net("am_" + std::to_string(r) + "_" +
                                 std::to_string(i)));
        conns.push_back({netlist::bus_name("am" + std::to_string(r), i),
                         am.back()});
      }
      am_nets.push_back(std::move(am));
    }
    top.add_submodule("align", "align", std::move(conns));
  }

  // WL driver.
  std::vector<NetId> act(static_cast<std::size_t>(rows));
  std::vector<NetId> gseln;
  {
    std::vector<Conn> conns = {{"clk", clk}, {"load", load}};
    if (fp) conns.push_back({"fp_sel", fp_sel});
    for (int r = 0; r < rows; ++r) {
      const auto din = top.add_port_bus("din" + std::to_string(r),
                                        PortDir::kIn, ib_max);
      for (int i = 0; i < ib_max; ++i) {
        conns.push_back({netlist::bus_name("din" + std::to_string(r), i),
                         din[static_cast<std::size_t>(i)]});
      }
      if (fp) {
        for (int i = 0; i < am_bits; ++i) {
          conns.push_back({netlist::bus_name("am" + std::to_string(r), i),
                           am_nets[static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(i)]});
        }
      }
      act[static_cast<std::size_t>(r)] =
          top.add_net("act_" + std::to_string(r));
      conns.push_back({netlist::bus_name("act", r),
                       act[static_cast<std::size_t>(r)]});
    }
    if (oai) {
      for (int k = 0; k < mcr; ++k) {
        conns.push_back({netlist::bus_name("selh", k),
                         selh[static_cast<std::size_t>(k)]});
      }
      for (int i = 0; i < rows * mcr; ++i) {
        gseln.push_back(top.add_net("gseln_" + std::to_string(i)));
        conns.push_back({netlist::bus_name("gseln", i), gseln.back()});
      }
    }
    top.add_submodule("wldrv", "wldrv", std::move(conns));
  }

  // Write port.
  std::vector<NetId> wl, wdata;
  {
    std::vector<Conn> conns = {{"clk", clk}, {"wen", wen}};
    for (int i = 0; i < log2i(rows); ++i) {
      conns.push_back({netlist::bus_name("waddr", i),
                       waddr[static_cast<std::size_t>(i)]});
    }
    for (int i = 0; i < log2i(mcr); ++i) {
      conns.push_back({netlist::bus_name("wbank", i),
                       wbank[static_cast<std::size_t>(i)]});
    }
    for (int c = 0; c < cols; ++c) {
      conns.push_back({netlist::bus_name("wd", c),
                       wd[static_cast<std::size_t>(c)]});
    }
    for (int i = 0; i < rows * mcr; ++i) {
      wl.push_back(top.add_net("wl_" + std::to_string(i)));
      conns.push_back({netlist::bus_name("wl", i), wl.back()});
    }
    for (int c = 0; c < cols; ++c) {
      wdata.push_back(top.add_net("wdata_" + std::to_string(c)));
      conns.push_back({netlist::bus_name("wdata", c), wdata.back()});
    }
    top.add_submodule("wrport", "wrport", std::move(conns));
  }

  // Columns; per-cycle controls reach them through distribution trees.
  GateBuilder top_gb(top, "ctl_");
  const auto neg_d = distribute(top_gb, neg, cols);
  const auto clr_d = distribute(top_gb, clr, cols);
  std::vector<std::vector<NetId>> col_acc;
  for (int c = 0; c < cols; ++c) {
    std::vector<Conn> conns = {{"clk", clk},
                               {"neg", neg_d[static_cast<std::size_t>(c)]},
                               {"clr", clr_d[static_cast<std::size_t>(c)]},
                               {"wdata", wdata[static_cast<std::size_t>(c)]}};
    for (int r = 0; r < rows; ++r) {
      conns.push_back({netlist::bus_name("act", r),
                       act[static_cast<std::size_t>(r)]});
    }
    for (int i = 0; i < rows * mcr; ++i) {
      conns.push_back({netlist::bus_name("wl", i),
                       wl[static_cast<std::size_t>(i)]});
    }
    if (oai) {
      for (int i = 0; i < rows * mcr; ++i) {
        conns.push_back({netlist::bus_name("gseln", i),
                         gseln[static_cast<std::size_t>(i)]});
      }
    } else if (mcr > 1) {
      for (int i = 0; i < log2i(mcr); ++i) {
        conns.push_back({netlist::bus_name("bsel", i),
                         bsel[static_cast<std::size_t>(i)]});
      }
    }
    std::vector<NetId> acc;
    for (int i = 0; i < w; ++i) {
      acc.push_back(
          top.add_net("acc_" + std::to_string(c) + "_" + std::to_string(i)));
      conns.push_back({netlist::bus_name("acc", i), acc.back()});
    }
    col_acc.push_back(std::move(acc));
    top.add_submodule("col" + std::to_string(c), "dcim_col",
                      std::move(conns));
  }

  // OFU groups.
  const int n_groups = cols / wp_max;
  const auto cap_d = distribute(top_gb, cap, n_groups);
  for (int g = 0; g < n_groups; ++g) {
    std::vector<Conn> conns = {{"clk", clk},
                               {"cap", cap_d[static_cast<std::size_t>(g)]}};
    for (int s = 0; s < n_stages; ++s) {
      conns.push_back({netlist::bus_name("mode", s),
                       mode[static_cast<std::size_t>(s)]});
    }
    for (int j = 0; j < wp_max; ++j) {
      const auto& acc = col_acc[static_cast<std::size_t>(g * wp_max + j)];
      for (int i = 0; i < w; ++i) {
        conns.push_back(
            {netlist::bus_name("r" + std::to_string(j), i),
             acc[static_cast<std::size_t>(i)]});
      }
    }
    // Expose every stage output as macro ports.
    for (int s = 0; s <= n_stages; ++s) {
      const int n_res = wp_max >> s;
      const int sw = ocfg.stage_width(s);
      for (int j = 0; j < n_res; ++j) {
        const auto out =
            top.add_port_bus(MacroDesign::out_bus(g, s, j), PortDir::kOut,
                             sw);
        for (int i = 0; i < sw; ++i) {
          conns.push_back(
              {netlist::bus_name(
                   "s" + std::to_string(s) + "_r" + std::to_string(j), i),
               out[static_cast<std::size_t>(i)]});
        }
      }
    }
    top.add_submodule("ofu_g" + std::to_string(g), "ofu_g",
                      std::move(conns));
  }

  if (modules) modules->put(top_key, top);
  md.design.add_module(std::move(top));
  return md;
}

}  // namespace syndcim::rtlgen

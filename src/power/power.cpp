#include "power/power.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

#include "tech/units.hpp"

namespace syndcim::power {

using netlist::FlatNetlist;

double PowerReport::group_uw(std::string_view g) const {
  for (const GroupPower& gp : by_group) {
    if (gp.group == g) return gp.dynamic_uw + gp.leakage_uw;
  }
  return 0.0;
}

double AreaReport::group_um2(std::string_view g) const {
  for (const GroupArea& ga : by_group) {
    if (ga.group == g) return ga.area_um2;
  }
  return 0.0;
}

PowerReport analyze_power(const FlatNetlist& nl, const cell::Library& lib,
                          const ActivityModel& activity,
                          const PowerOptions& opt) {
  OBS_SPAN("power.analyze");
  if (activity.toggle_rate.size() != nl.net_count()) {
    throw std::invalid_argument("analyze_power: activity/netlist mismatch");
  }
  const tech::TechNode& node = lib.node();
  if (!node.vdd_in_range(opt.vdd)) {
    throw std::invalid_argument("analyze_power: vdd out of range");
  }
  const double e_scale = node.energy_scale(opt.vdd);
  const double l_scale = node.leakage_scale(opt.vdd, opt.temp_c);
  const double v2 = opt.vdd * opt.vdd;

  // Resolve gates once; accumulate per-net cap, driver group, and
  // per-gate contributions.
  std::vector<const cell::Cell*> masters;
  for (const std::string& m : nl.master_names()) masters.push_back(&lib.get(m));

  std::vector<double> net_cap(nl.net_count(), 0.0);
  std::vector<int> net_fanout(nl.net_count(), 0);
  std::vector<std::uint32_t> net_group(nl.net_count(), 0);

  PowerReport rep;
  rep.by_group.resize(nl.group_names().size());
  for (std::size_t i = 0; i < rep.by_group.size(); ++i) {
    rep.by_group[i].group = nl.group_names()[i];
  }

  for (const auto& fg : nl.gates()) {
    const cell::Cell* c = masters[fg.master];
    for (const auto& pc : fg.pins) {
      const int pi = c->pin_index(nl.pin_names()[pc.pin_name]);
      if (pi < 0) continue;
      const cell::Pin& p = c->pins[static_cast<std::size_t>(pi)];
      if (p.is_input) {
        net_cap[pc.net] += p.cap_ff;
        ++net_fanout[pc.net];
      } else {
        net_group[pc.net] = fg.group;
      }
    }
  }

  // Per-net switching energy (fJ/cycle): toggles * 0.5 * C * V^2.
  std::vector<double> group_fj(rep.by_group.size(), 0.0);
  double switching_fj = 0.0;
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const double c_total =
        net_cap[n] + opt.wire.net_cap(n, net_fanout[n]);
    const double e = activity.toggle_rate[n] * 0.5 * c_total * v2;
    switching_fj += e;
    group_fj[net_group[n]] += e;
  }

  // Cell internal + clock energy, leakage.
  double internal_fj = 0.0, clock_fj = 0.0, leak_nw = 0.0;
  std::vector<double> group_leak_nw(rep.by_group.size(), 0.0);
  for (const auto& fg : nl.gates()) {
    const cell::Cell* c = masters[fg.master];
    double out_toggles = 0.0;
    for (const auto& pc : fg.pins) {
      const int pi = c->pin_index(nl.pin_names()[pc.pin_name]);
      if (pi >= 0 && !c->pins[static_cast<std::size_t>(pi)].is_input) {
        out_toggles += activity.toggle_rate[pc.net];
      }
    }
    const double e_int = out_toggles * c->internal_energy_fj * e_scale;
    internal_fj += e_int;
    clock_fj += c->clock_energy_fj * e_scale;
    group_fj[fg.group] += e_int + c->clock_energy_fj * e_scale;
    const double l = c->leakage_nw * l_scale;
    leak_nw += l;
    group_leak_nw[fg.group] += l;
  }

  rep.switching_uw = units::uw_from_fj_mhz(switching_fj, opt.freq_mhz);
  rep.internal_uw = units::uw_from_fj_mhz(internal_fj, opt.freq_mhz);
  rep.clock_uw = units::uw_from_fj_mhz(clock_fj, opt.freq_mhz);
  rep.leakage_uw = leak_nw * 1.0e-3;
  for (std::size_t g = 0; g < rep.by_group.size(); ++g) {
    rep.by_group[g].dynamic_uw =
        units::uw_from_fj_mhz(group_fj[g], opt.freq_mhz);
    rep.by_group[g].leakage_uw = group_leak_nw[g] * 1.0e-3;
  }
  return rep;
}

AreaReport analyze_area(const FlatNetlist& nl, const cell::Library& lib) {
  std::vector<const cell::Cell*> masters;
  for (const std::string& m : nl.master_names()) masters.push_back(&lib.get(m));
  AreaReport rep;
  rep.by_group.resize(nl.group_names().size());
  for (std::size_t i = 0; i < rep.by_group.size(); ++i) {
    rep.by_group[i].group = nl.group_names()[i];
  }
  for (const auto& fg : nl.gates()) {
    const cell::Cell* c = masters[fg.master];
    rep.total_um2 += c->area_um2;
    (c->is_bitcell() ? rep.bitcell_um2 : rep.logic_um2) += c->area_um2;
    rep.by_group[fg.group].area_um2 += c->area_um2;
  }
  return rep;
}

}  // namespace syndcim::power

#pragma once
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cell/library.hpp"
#include "core/artifact_cache.hpp"
#include "netlist/flatten.hpp"
#include "sim/gate_sim.hpp"

namespace syndcim::power {

/// Per-net switching activity: toggles per clock cycle plus static one
/// probability (used for pass-gate leakage-style corrections and the
/// probabilistic estimator itself).
struct ActivityModel {
  std::vector<double> toggle_rate;  ///< transitions per cycle, per flat net
  std::vector<double> p_one;        ///< P(net == 1)
};

/// Extracts measured activity from a finished gate-level simulation run:
/// toggles / (cycles * lanes), since each simulated cycle of the
/// bit-parallel engine carries `lanes` independent workload cycles. P1 is
/// the final-state lane population (popcount / lanes). Clock nets (nets
/// driving CK pins) are forced to two transitions per cycle since GateSim
/// models an implicit clock.
[[nodiscard]] ActivityModel activity_from_sim(const netlist::FlatNetlist& nl,
                                              const cell::Library& lib,
                                              const sim::GateSim& gs);

/// Workload statistics for the probabilistic estimator.
struct ActivitySpec {
  /// P(primary input bit == 1); DCIM inputs follow the workload's bit
  /// density (e.g. Table II's 12.5% input sparsity point).
  double input_p1 = 0.5;
  /// Transitions per cycle on primary inputs.
  double input_toggle = 0.25;
  /// P(stored weight bit == 1) — bitcell outputs are static during MAC.
  double weight_p1 = 0.5;
};

/// Propagation engine selection. Both engines implement identical
/// semantics and produce bit-identical models; kScalar is the retained
/// gate-at-a-time control arm (and the only engine supporting
/// combinational cells with more than 5 inputs).
enum class ActivityEngine : std::uint8_t {
  kSoa,     ///< flat per-class loops with precomputed truth masks
  kScalar,  ///< retained per-gate eval_kind reference
};

/// Zero-delay probabilistic activity propagation assuming spatial input
/// independence: P1 is propagated exactly per gate function under the
/// independence assumption and the toggle rate is damped through deep
/// logic. Used at search time, when no netlist-level simulation has run.
[[nodiscard]] ActivityModel propagate_activity(
    const netlist::FlatNetlist& nl, const cell::Library& lib,
    const ActivitySpec& spec, ActivityEngine engine = ActivityEngine::kSoa);

/// One group's propagation result: final (p_one, toggle_rate) of every net
/// the group drives, in the group's first-driver order. A pure function of
/// the group's structure and its observed input probabilities — which is
/// exactly what the artifact key hashes, so replaying a cached artifact is
/// bit-identical to recomputing it.
struct GroupActivityArtifact {
  std::vector<std::pair<double, double>> driven;
};
/// Shared activity tier of the subcircuit-artifact cache.
using ActivityCache = core::ArtifactCache<GroupActivityArtifact>;

struct GroupedActivityStats {
  std::size_t groups = 0;       ///< cone evaluations requested
  std::size_t group_hits = 0;   ///< cones spliced from cached artifacts
};

/// Incremental variant of propagate_activity used by the subcircuit
/// library: gates are processed one depth-1 group at a time in
/// first-occurrence order (topological for generated macros — drivers
/// before columns before OFUs), each group iterated to its own fixpoint
/// against already-settled upstream values. Every group cone is
/// content-addressed by (library fingerprint, group structure, observed
/// boundary probabilities, workload spec), so unchanged cones splice their
/// cached activity instead of re-running the fixpoint — across
/// configurations, specs and sweep workers. Cold (cache == nullptr or
/// disabled) and warm runs produce byte-identical models by construction.
[[nodiscard]] ActivityModel propagate_activity_grouped(
    const netlist::FlatNetlist& nl, const cell::Library& lib,
    const ActivitySpec& spec, ActivityCache* cache = nullptr,
    GroupedActivityStats* stats = nullptr,
    ActivityEngine engine = ActivityEngine::kSoa);

}  // namespace syndcim::power

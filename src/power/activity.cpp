#include "power/activity.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "power/activity_kernel.hpp"

namespace syndcim::power {

using cell::Kind;
using netlist::FlatNetlist;
using netlist::NetConst;

namespace {
constexpr std::uint32_t kNoNet = UINT32_MAX;

/// Base state shared by all estimators: constants pinned, primary inputs
/// at the workload spec, everything else at the 0.5 prior.
ActivityModel base_model(const FlatNetlist& nl, const ActivitySpec& spec) {
  ActivityModel am;
  am.p_one.assign(nl.net_count(), 0.5);
  am.toggle_rate.assign(nl.net_count(), 0.0);
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net_const(n) != NetConst::kNone) {
      am.p_one[n] = nl.net_const(n) == NetConst::kOne ? 1.0 : 0.0;
      am.toggle_rate[n] = 0.0;
    }
  }
  for (const auto& io : nl.primary_inputs()) {
    am.p_one[io.net] = spec.input_p1;
    am.toggle_rate[io.net] = spec.input_toggle;
  }
  return am;
}

/// Clock nets toggle twice per cycle regardless of what any estimator
/// computed (GateSim models an implicit clock; the probabilistic model
/// never drives clock trees).
void force_clock_nets(const ResolvedGates& rg, ActivityModel& am) {
  for (const std::uint32_t net : rg.clock_nets) am.toggle_rate[net] = 2.0;
}

/// Retained gate-at-a-time fixpoint (the control arm ActivityKernel is
/// verified against): same gate classification, same visit order, same
/// arithmetic, evaluated through cell::eval_kind per input combo.
void fixpoint_scalar(const std::vector<ResolvedGate>& gates,
                     const std::uint32_t* ids, std::size_t n,
                     const ActivitySpec& spec, ActivityModel& am) {
  for (int pass = 0; pass < 8; ++pass) {
    // Sequential outputs first.
    for (std::size_t k = 0; k < n; ++k) {
      const ResolvedGate& g = gates[ids[k]];
      const cell::TimingRole role = g.cell->timing_role();
      if (role == cell::TimingRole::kCombinational) continue;
      const std::uint32_t q = g.q_net;
      if (q == kNoNet) continue;
      if (role == cell::TimingRole::kStorage) {
        am.p_one[q] = spec.weight_p1;
        am.toggle_rate[q] = 0.0;  // weights static during MAC
        continue;
      }
      if (g.d_net == kNoNet) continue;
      const double pd = am.p_one[g.d_net];
      am.p_one[q] = pd;
      am.toggle_rate[q] = 2.0 * pd * (1.0 - pd) * kToggleDamp;
    }
    // Combinational gates: exact P1 under independence.
    for (std::size_t k = 0; k < n; ++k) {
      const ResolvedGate& g = gates[ids[k]];
      if (g.cell->timing_role() != cell::TimingRole::kCombinational) {
        continue;
      }
      bool connected = true;
      for (const std::uint32_t net : g.in_nets) {
        connected = connected && net != kNoNet;
      }
      if (!connected) continue;
      const int n_in = static_cast<int>(g.in_nets.size());
      const int combos = 1 << n_in;
      std::vector<double> pout(g.out_nets.size(), 0.0);
      std::vector<int> in_vals(static_cast<std::size_t>(n_in));
      for (int v = 0; v < combos; ++v) {
        double p = 1.0;
        for (int i = 0; i < n_in; ++i) {
          const int bit = (v >> i) & 1;
          in_vals[static_cast<std::size_t>(i)] = bit;
          const double p1 = am.p_one[g.in_nets[static_cast<std::size_t>(i)]];
          p *= bit ? p1 : (1.0 - p1);
        }
        if (p == 0.0) continue;
        const auto outs = cell::eval_kind(g.cell->kind, in_vals);
        for (std::size_t o = 0; o < pout.size() && o < outs.size(); ++o) {
          if (outs[o]) pout[o] += p;
        }
      }
      for (std::size_t o = 0; o < g.out_nets.size(); ++o) {
        const std::uint32_t net = g.out_nets[o];
        if (net == kNoNet) continue;
        am.p_one[net] = pout[o];
        am.toggle_rate[net] = 2.0 * pout[o] * (1.0 - pout[o]) * kToggleDamp;
      }
    }
  }
}

std::vector<std::uint32_t> iota_ids(std::size_t n) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
  return ids;
}
}  // namespace

ActivityModel activity_from_sim(const FlatNetlist& nl,
                                const cell::Library& lib,
                                const sim::GateSim& gs) {
  if (gs.cycles() == 0) {
    throw std::invalid_argument("activity_from_sim: no cycles simulated");
  }
  ActivityModel am;
  // Each simulated cycle carries `lanes` independent workload cycles and
  // net_toggles() is popcount-summed over lanes, so the per-workload-cycle
  // rate divides by cycles * lanes (with lanes == 1 this is bit-identical
  // to the scalar normalization).
  const double lanes = static_cast<double>(gs.lanes());
  const double cycles = static_cast<double>(gs.cycles()) * lanes;
  am.toggle_rate.resize(nl.net_count());
  am.p_one.assign(nl.net_count(), 0.5);  // p1 not tracked by the simulator
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    am.toggle_rate[n] = static_cast<double>(gs.net_toggles()[n]) / cycles;
    // Final-state approximation, averaged over the lane population.
    am.p_one[n] =
        static_cast<double>(std::popcount(gs.net_word(n))) / lanes;
  }
  // Clock nets: GateSim's clock is implicit; force 2 transitions/cycle.
  force_clock_nets(resolve_gates(nl, lib), am);
  return am;
}

ActivityModel propagate_activity(const FlatNetlist& nl,
                                 const cell::Library& lib,
                                 const ActivitySpec& spec,
                                 ActivityEngine engine) {
  const ResolvedGates rg = resolve_gates(nl, lib);
  ActivityModel am = base_model(nl, spec);

  // Iterate to a fixpoint so register feedback (accumulators) settles.
  if (engine == ActivityEngine::kSoa) {
    const ActivityKernel kernel(rg);
    kernel.run(spec, am);
  } else {
    const auto ids = iota_ids(rg.gates.size());
    fixpoint_scalar(rg.gates, ids.data(), ids.size(), spec, am);
  }
  force_clock_nets(rg, am);
  return am;
}

ActivityModel propagate_activity_grouped(const netlist::FlatNetlist& nl,
                                         const cell::Library& lib,
                                         const ActivitySpec& spec,
                                         ActivityCache* cache,
                                         GroupedActivityStats* stats,
                                         ActivityEngine engine) {
  const ResolvedGates rg = resolve_gates(nl, lib);
  const std::vector<ResolvedGate>& gates = rg.gates;
  ActivityModel am = base_model(nl, spec);

  // Group membership in first-gate-occurrence order; for generated macros
  // that order is topological (align -> drivers -> columns -> OFUs), so
  // each cone sees settled inputs.
  std::vector<std::int32_t> slot_of(nl.group_names().size(), -1);
  std::vector<std::vector<std::uint32_t>> cones;
  for (std::uint32_t gi = 0; gi < nl.gates().size(); ++gi) {
    std::int32_t& slot = slot_of[nl.gates()[gi].group];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(cones.size());
      cones.emplace_back();
    }
    cones[static_cast<std::size_t>(slot)].push_back(gi);
  }

  // One kernel over the whole netlist, shared by every cone; cache misses
  // run the fixpoint restricted to the cone's members.
  std::unique_ptr<const ActivityKernel> kernel;
  if (engine == ActivityEngine::kSoa) {
    kernel = std::make_unique<const ActivityKernel>(rg);
  }

  const std::string& libfp = lib.fingerprint();
  std::vector<std::uint32_t> local_of(nl.net_count(), UINT32_MAX);
  std::vector<std::uint32_t> touched;
  std::vector<std::uint32_t> driven_list;

  for (const auto& members : cones) {
    if (stats) ++stats->groups;

    // Local numbering of every net the cone references (first-use order)
    // plus the cone's driven-net list (first-driver order) — both pure
    // functions of the cone's structure.
    touched.clear();
    driven_list.clear();
    core::ArtifactHasher h;
    h.str("act2");
    h.str(libfp);
    h.dbl(spec.weight_p1);
    auto local_id = [&](std::uint32_t net) -> std::uint32_t {
      std::uint32_t& slot = local_of[net];
      if (slot == UINT32_MAX) {
        slot = static_cast<std::uint32_t>(touched.size());
        touched.push_back(net);
      }
      return slot;
    };
    for (const std::uint32_t gi : members) {
      const ResolvedGate& g = gates[gi];
      h.str(g.cell->name);
      h.u64(g.in_nets.size());
      for (const std::uint32_t net : g.in_nets) {
        h.u32(net == kNoNet ? UINT32_MAX : local_id(net));
      }
      h.u64(g.out_nets.size());
      for (const std::uint32_t net : g.out_nets) {
        h.u32(net == kNoNet ? UINT32_MAX : local_id(net));
      }
    }
    // Driven list: first-driver order, deduplicated.
    {
      std::vector<bool> seen(touched.size(), false);
      for (const std::uint32_t gi : members) {
        for (const std::uint32_t net : gates[gi].out_nets) {
          if (net == kNoNet) continue;
          const std::uint32_t id = local_of[net];
          if (!seen[id]) {
            seen[id] = true;
            driven_list.push_back(net);
          }
        }
      }
    }
    // Observed probabilities of every referenced net (inputs settled by
    // upstream cones; driven nets carry their pre-cone state, which covers
    // multi-driven corner cases exactly).
    for (const std::uint32_t net : touched) h.dbl(am.p_one[net]);
    const std::string key = h.hex();

    std::shared_ptr<const GroupActivityArtifact> art;
    if (cache) art = cache->find(key);
    if (art && art->driven.size() == driven_list.size()) {
      for (std::size_t j = 0; j < driven_list.size(); ++j) {
        am.p_one[driven_list[j]] = art->driven[j].first;
        am.toggle_rate[driven_list[j]] = art->driven[j].second;
      }
      if (stats) ++stats->group_hits;
    } else {
      if (kernel) {
        kernel->run_members(members, spec, am);
      } else {
        fixpoint_scalar(gates, members.data(), members.size(), spec, am);
      }
      if (cache) {
        GroupActivityArtifact out;
        out.driven.reserve(driven_list.size());
        for (const std::uint32_t net : driven_list) {
          out.driven.emplace_back(am.p_one[net], am.toggle_rate[net]);
        }
        cache->put(key, std::move(out));
      }
    }
    for (const std::uint32_t net : touched) local_of[net] = UINT32_MAX;
  }

  // Clock nets toggle twice per cycle (identical to propagate_activity).
  force_clock_nets(rg, am);
  return am;
}

}  // namespace syndcim::power

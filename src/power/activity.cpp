#include "power/activity.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace syndcim::power {

using cell::Kind;
using netlist::FlatNetlist;
using netlist::NetConst;

namespace {
constexpr std::uint32_t kNoNet = UINT32_MAX;
/// Temporal-correlation derating applied to the 2p(1-p) toggle estimate.
constexpr double kToggleDamp = 0.7;

struct ResolvedGate {
  const cell::Cell* cell;
  std::vector<std::uint32_t> in_nets;   // canonical order
  std::vector<std::uint32_t> out_nets;  // canonical order
};

std::vector<ResolvedGate> resolve(const FlatNetlist& nl,
                                  const cell::Library& lib) {
  std::vector<const cell::Cell*> masters;
  for (const std::string& m : nl.master_names()) masters.push_back(&lib.get(m));
  std::vector<ResolvedGate> out;
  out.reserve(nl.gates().size());
  for (const auto& fg : nl.gates()) {
    ResolvedGate rg;
    rg.cell = masters[fg.master];
    std::vector<std::uint32_t> by_pin(rg.cell->pins.size(), kNoNet);
    for (const auto& pc : fg.pins) {
      const int pi = rg.cell->pin_index(nl.pin_names()[pc.pin_name]);
      if (pi >= 0) by_pin[static_cast<std::size_t>(pi)] = pc.net;
    }
    for (std::size_t i = 0; i < rg.cell->pins.size(); ++i) {
      (rg.cell->pins[i].is_input ? rg.in_nets : rg.out_nets)
          .push_back(by_pin[i]);
    }
    out.push_back(std::move(rg));
  }
  return out;
}
}  // namespace

ActivityModel activity_from_sim(const FlatNetlist& nl,
                                const cell::Library& lib,
                                const sim::GateSim& gs) {
  if (gs.cycles() == 0) {
    throw std::invalid_argument("activity_from_sim: no cycles simulated");
  }
  ActivityModel am;
  // Each simulated cycle carries `lanes` independent workload cycles and
  // net_toggles() is popcount-summed over lanes, so the per-workload-cycle
  // rate divides by cycles * lanes (with lanes == 1 this is bit-identical
  // to the scalar normalization).
  const double lanes = static_cast<double>(gs.lanes());
  const double cycles = static_cast<double>(gs.cycles()) * lanes;
  am.toggle_rate.resize(nl.net_count());
  am.p_one.assign(nl.net_count(), 0.5);  // p1 not tracked by the simulator
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    am.toggle_rate[n] = static_cast<double>(gs.net_toggles()[n]) / cycles;
    // Final-state approximation, averaged over the lane population.
    am.p_one[n] =
        static_cast<double>(std::popcount(gs.net_word(n))) / lanes;
  }
  // Clock nets: GateSim's clock is implicit; force 2 transitions/cycle.
  const auto gates = resolve(nl, lib);
  for (const auto& g : gates) {
    for (std::size_t i = 0, in = 0; i < g.cell->pins.size(); ++i) {
      if (!g.cell->pins[i].is_input) continue;
      if (g.cell->pins[i].is_clock) {
        const std::uint32_t net = g.in_nets[in];
        if (net != kNoNet) am.toggle_rate[net] = 2.0;
      }
      ++in;
    }
  }
  return am;
}

ActivityModel propagate_activity(const FlatNetlist& nl,
                                 const cell::Library& lib,
                                 const ActivitySpec& spec) {
  const auto gates = resolve(nl, lib);
  ActivityModel am;
  am.p_one.assign(nl.net_count(), 0.5);
  am.toggle_rate.assign(nl.net_count(), 0.0);

  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net_const(n) != NetConst::kNone) {
      am.p_one[n] = nl.net_const(n) == NetConst::kOne ? 1.0 : 0.0;
      am.toggle_rate[n] = 0.0;
    }
  }
  for (const auto& io : nl.primary_inputs()) {
    am.p_one[io.net] = spec.input_p1;
    am.toggle_rate[io.net] = spec.input_toggle;
  }

  // Iterate to a fixpoint so register feedback (accumulators) settles.
  for (int pass = 0; pass < 8; ++pass) {
    // Sequential outputs first.
    for (const auto& g : gates) {
      const cell::TimingRole role = g.cell->timing_role();
      if (role == cell::TimingRole::kCombinational) continue;
      const std::uint32_t q = g.out_nets.empty() ? kNoNet : g.out_nets[0];
      if (q == kNoNet) continue;
      if (role == cell::TimingRole::kStorage) {
        am.p_one[q] = spec.weight_p1;
        am.toggle_rate[q] = 0.0;  // weights static during MAC
        continue;
      }
      const double pd = am.p_one[g.in_nets[0]];  // D pin is first input
      am.p_one[q] = pd;
      am.toggle_rate[q] = 2.0 * pd * (1.0 - pd) * kToggleDamp;
    }
    // Combinational gates: exact P1 under independence (<= 5 inputs).
    for (const auto& g : gates) {
      if (g.cell->timing_role() != cell::TimingRole::kCombinational) {
        continue;
      }
      const int n_in = static_cast<int>(g.in_nets.size());
      const int combos = 1 << n_in;
      std::vector<double> pout(g.out_nets.size(), 0.0);
      std::vector<int> in_vals(static_cast<std::size_t>(n_in));
      for (int v = 0; v < combos; ++v) {
        double p = 1.0;
        for (int i = 0; i < n_in; ++i) {
          const int bit = (v >> i) & 1;
          in_vals[static_cast<std::size_t>(i)] = bit;
          const double p1 = am.p_one[g.in_nets[static_cast<std::size_t>(i)]];
          p *= bit ? p1 : (1.0 - p1);
        }
        if (p == 0.0) continue;
        const auto outs = cell::eval_kind(g.cell->kind, in_vals);
        for (std::size_t o = 0; o < pout.size(); ++o) {
          if (outs[o]) pout[o] += p;
        }
      }
      for (std::size_t o = 0; o < g.out_nets.size(); ++o) {
        const std::uint32_t net = g.out_nets[o];
        if (net == kNoNet) continue;
        am.p_one[net] = pout[o];
        am.toggle_rate[net] = 2.0 * pout[o] * (1.0 - pout[o]) * kToggleDamp;
      }
    }
  }
  // Clock nets toggle twice per cycle.
  for (const auto& g : gates) {
    std::size_t in = 0;
    for (const auto& p : g.cell->pins) {
      if (!p.is_input) continue;
      if (p.is_clock && g.in_nets[in] != kNoNet) {
        am.toggle_rate[g.in_nets[in]] = 2.0;
      }
      ++in;
    }
  }
  return am;
}

namespace {

/// Runs the propagate_activity fixpoint over one group's gates only,
/// reading settled values for everything outside the group.
void solve_group(const std::vector<ResolvedGate>& gates,
                 const std::vector<std::uint32_t>& members,
                 const ActivitySpec& spec, ActivityModel& am) {
  for (int pass = 0; pass < 8; ++pass) {
    for (const std::uint32_t gi : members) {
      const ResolvedGate& g = gates[gi];
      const cell::TimingRole role = g.cell->timing_role();
      if (role == cell::TimingRole::kCombinational) continue;
      const std::uint32_t q = g.out_nets.empty() ? kNoNet : g.out_nets[0];
      if (q == kNoNet) continue;
      if (role == cell::TimingRole::kStorage) {
        am.p_one[q] = spec.weight_p1;
        am.toggle_rate[q] = 0.0;
        continue;
      }
      const double pd = am.p_one[g.in_nets[0]];
      am.p_one[q] = pd;
      am.toggle_rate[q] = 2.0 * pd * (1.0 - pd) * kToggleDamp;
    }
    for (const std::uint32_t gi : members) {
      const ResolvedGate& g = gates[gi];
      if (g.cell->timing_role() != cell::TimingRole::kCombinational) {
        continue;
      }
      const int n_in = static_cast<int>(g.in_nets.size());
      const int combos = 1 << n_in;
      std::vector<double> pout(g.out_nets.size(), 0.0);
      std::vector<int> in_vals(static_cast<std::size_t>(n_in));
      for (int v = 0; v < combos; ++v) {
        double p = 1.0;
        for (int i = 0; i < n_in; ++i) {
          const int bit = (v >> i) & 1;
          in_vals[static_cast<std::size_t>(i)] = bit;
          const double p1 = am.p_one[g.in_nets[static_cast<std::size_t>(i)]];
          p *= bit ? p1 : (1.0 - p1);
        }
        if (p == 0.0) continue;
        const auto outs = cell::eval_kind(g.cell->kind, in_vals);
        for (std::size_t o = 0; o < pout.size(); ++o) {
          if (outs[o]) pout[o] += p;
        }
      }
      for (std::size_t o = 0; o < g.out_nets.size(); ++o) {
        const std::uint32_t net = g.out_nets[o];
        if (net == kNoNet) continue;
        am.p_one[net] = pout[o];
        am.toggle_rate[net] = 2.0 * pout[o] * (1.0 - pout[o]) * kToggleDamp;
      }
    }
  }
}

}  // namespace

ActivityModel propagate_activity_grouped(const netlist::FlatNetlist& nl,
                                         const cell::Library& lib,
                                         const ActivitySpec& spec,
                                         ActivityCache* cache,
                                         GroupedActivityStats* stats) {
  const auto gates = resolve(nl, lib);
  ActivityModel am;
  am.p_one.assign(nl.net_count(), 0.5);
  am.toggle_rate.assign(nl.net_count(), 0.0);
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net_const(n) != NetConst::kNone) {
      am.p_one[n] = nl.net_const(n) == NetConst::kOne ? 1.0 : 0.0;
      am.toggle_rate[n] = 0.0;
    }
  }
  for (const auto& io : nl.primary_inputs()) {
    am.p_one[io.net] = spec.input_p1;
    am.toggle_rate[io.net] = spec.input_toggle;
  }

  // Group membership in first-gate-occurrence order; for generated macros
  // that order is topological (align -> drivers -> columns -> OFUs), so
  // each cone sees settled inputs.
  std::vector<std::int32_t> slot_of(nl.group_names().size(), -1);
  std::vector<std::vector<std::uint32_t>> cones;
  for (std::uint32_t gi = 0; gi < nl.gates().size(); ++gi) {
    std::int32_t& slot = slot_of[nl.gates()[gi].group];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(cones.size());
      cones.emplace_back();
    }
    cones[static_cast<std::size_t>(slot)].push_back(gi);
  }

  const std::string& libfp = lib.fingerprint();
  std::vector<std::uint32_t> local_of(nl.net_count(), UINT32_MAX);
  std::vector<std::uint32_t> touched;
  std::vector<std::uint32_t> driven_list;

  for (const auto& members : cones) {
    if (stats) ++stats->groups;

    // Local numbering of every net the cone references (first-use order)
    // plus the cone's driven-net list (first-driver order) — both pure
    // functions of the cone's structure.
    touched.clear();
    driven_list.clear();
    core::ArtifactHasher h;
    h.str("act1");
    h.str(libfp);
    h.dbl(spec.weight_p1);
    auto local_id = [&](std::uint32_t net) -> std::uint32_t {
      std::uint32_t& slot = local_of[net];
      if (slot == UINT32_MAX) {
        slot = static_cast<std::uint32_t>(touched.size());
        touched.push_back(net);
      }
      return slot;
    };
    for (const std::uint32_t gi : members) {
      const ResolvedGate& g = gates[gi];
      h.str(g.cell->name);
      h.u64(g.in_nets.size());
      for (const std::uint32_t net : g.in_nets) {
        h.u32(net == kNoNet ? UINT32_MAX : local_id(net));
      }
      h.u64(g.out_nets.size());
      for (const std::uint32_t net : g.out_nets) {
        h.u32(net == kNoNet ? UINT32_MAX : local_id(net));
      }
    }
    // Driven list: first-driver order, deduplicated.
    {
      std::vector<bool> seen(touched.size(), false);
      for (const std::uint32_t gi : members) {
        for (const std::uint32_t net : gates[gi].out_nets) {
          if (net == kNoNet) continue;
          const std::uint32_t id = local_of[net];
          if (!seen[id]) {
            seen[id] = true;
            driven_list.push_back(net);
          }
        }
      }
    }
    // Observed probabilities of every referenced net (inputs settled by
    // upstream cones; driven nets carry their pre-cone state, which covers
    // multi-driven corner cases exactly).
    for (const std::uint32_t net : touched) h.dbl(am.p_one[net]);
    const std::string key = h.hex();

    std::shared_ptr<const GroupActivityArtifact> art;
    if (cache) art = cache->find(key);
    if (art && art->driven.size() == driven_list.size()) {
      for (std::size_t j = 0; j < driven_list.size(); ++j) {
        am.p_one[driven_list[j]] = art->driven[j].first;
        am.toggle_rate[driven_list[j]] = art->driven[j].second;
      }
      if (stats) ++stats->group_hits;
    } else {
      solve_group(gates, members, spec, am);
      if (cache) {
        GroupActivityArtifact out;
        out.driven.reserve(driven_list.size());
        for (const std::uint32_t net : driven_list) {
          out.driven.emplace_back(am.p_one[net], am.toggle_rate[net]);
        }
        cache->put(key, std::move(out));
      }
    }
    for (const std::uint32_t net : touched) local_of[net] = UINT32_MAX;
  }

  // Clock nets toggle twice per cycle (identical to propagate_activity).
  for (const auto& g : gates) {
    std::size_t in = 0;
    for (const auto& p : g.cell->pins) {
      if (!p.is_input) continue;
      if (p.is_clock && g.in_nets[in] != kNoNet) {
        am.toggle_rate[g.in_nets[in]] = 2.0;
      }
      ++in;
    }
  }
  return am;
}

}  // namespace syndcim::power

#include "power/serialize.hpp"

#include "core/binio.hpp"

namespace syndcim::power {

using core::BinDecodeError;
using core::BinReader;
using core::BinWriter;
using core::deep_str_bytes;
using core::deep_vec_bytes;

namespace {

constexpr std::uint8_t kActivityVersion = 1;
constexpr std::uint8_t kGroupActivityVersion = 1;
constexpr std::uint8_t kPowerVersion = 1;
constexpr std::uint8_t kAreaVersion = 1;

void encode_doubles(BinWriter& w, const std::vector<double>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const double d : v) w.f64(d);
}

std::vector<double> decode_doubles(BinReader& r) {
  const std::uint32_t n = r.len(8);
  std::vector<double> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.f64());
  return v;
}

}  // namespace

std::string encode_activity_model(const ActivityModel& m) {
  BinWriter w;
  w.u8(kActivityVersion);
  encode_doubles(w, m.toggle_rate);
  encode_doubles(w, m.p_one);
  return w.take();
}

ActivityModel decode_activity_model(std::string_view payload) {
  BinReader r(payload);
  if (r.u8() != kActivityVersion) {
    throw BinDecodeError("unsupported codec version for activity model");
  }
  ActivityModel m;
  m.toggle_rate = decode_doubles(r);
  m.p_one = decode_doubles(r);
  r.expect_end();
  return m;
}

std::string encode_group_activity(const GroupActivityArtifact& a) {
  BinWriter w;
  w.u8(kGroupActivityVersion);
  w.u32(static_cast<std::uint32_t>(a.driven.size()));
  for (const auto& [p1, toggle] : a.driven) {
    w.f64(p1);
    w.f64(toggle);
  }
  return w.take();
}

GroupActivityArtifact decode_group_activity(std::string_view payload) {
  BinReader r(payload);
  if (r.u8() != kGroupActivityVersion) {
    throw BinDecodeError("unsupported codec version for group activity");
  }
  GroupActivityArtifact a;
  const std::uint32_t n = r.len(16);
  a.driven.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double p1 = r.f64();
    const double toggle = r.f64();
    a.driven.emplace_back(p1, toggle);
  }
  r.expect_end();
  return a;
}

std::string encode_power_report(const PowerReport& p) {
  BinWriter w;
  w.u8(kPowerVersion);
  w.f64(p.switching_uw);
  w.f64(p.internal_uw);
  w.f64(p.clock_uw);
  w.f64(p.leakage_uw);
  w.u32(static_cast<std::uint32_t>(p.by_group.size()));
  for (const GroupPower& g : p.by_group) {
    w.str(g.group);
    w.f64(g.dynamic_uw);
    w.f64(g.leakage_uw);
  }
  return w.take();
}

PowerReport decode_power_report(std::string_view payload) {
  BinReader r(payload);
  if (r.u8() != kPowerVersion) {
    throw BinDecodeError("unsupported codec version for power report");
  }
  PowerReport p;
  p.switching_uw = r.f64();
  p.internal_uw = r.f64();
  p.clock_uw = r.f64();
  p.leakage_uw = r.f64();
  const std::uint32_t n = r.len(20);
  p.by_group.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    GroupPower g;
    g.group = r.str();
    g.dynamic_uw = r.f64();
    g.leakage_uw = r.f64();
    p.by_group.push_back(std::move(g));
  }
  r.expect_end();
  return p;
}

std::string encode_area_report(const AreaReport& a) {
  BinWriter w;
  w.u8(kAreaVersion);
  w.f64(a.total_um2);
  w.f64(a.bitcell_um2);
  w.f64(a.logic_um2);
  w.u32(static_cast<std::uint32_t>(a.by_group.size()));
  for (const GroupArea& g : a.by_group) {
    w.str(g.group);
    w.f64(g.area_um2);
  }
  return w.take();
}

AreaReport decode_area_report(std::string_view payload) {
  BinReader r(payload);
  if (r.u8() != kAreaVersion) {
    throw BinDecodeError("unsupported codec version for area report");
  }
  AreaReport a;
  a.total_um2 = r.f64();
  a.bitcell_um2 = r.f64();
  a.logic_um2 = r.f64();
  const std::uint32_t n = r.len(12);
  a.by_group.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    GroupArea g;
    g.group = r.str();
    g.area_um2 = r.f64();
    a.by_group.push_back(std::move(g));
  }
  r.expect_end();
  return a;
}

std::size_t deep_bytes(const ActivityModel& m) {
  return deep_vec_bytes(m.toggle_rate) + deep_vec_bytes(m.p_one);
}

std::size_t deep_bytes(const GroupActivityArtifact& a) {
  return deep_vec_bytes(a.driven);
}

std::size_t deep_bytes(const PowerReport& p) {
  std::size_t n = deep_vec_bytes(p.by_group);
  for (const GroupPower& g : p.by_group) n += deep_str_bytes(g.group);
  return n;
}

std::size_t deep_bytes(const AreaReport& a) {
  std::size_t n = deep_vec_bytes(a.by_group);
  for (const GroupArea& g : a.by_group) n += deep_str_bytes(g.group);
  return n;
}

}  // namespace syndcim::power

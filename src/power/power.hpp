#pragma once
#include <string>
#include <vector>

#include "power/activity.hpp"
#include "sta/sta.hpp"

namespace syndcim::power {

struct PowerOptions {
  double vdd = 0.9;
  double temp_c = 25.0;  ///< junction temperature (leakage corner)
  double freq_mhz = 800.0;
  sta::WireModel wire;  ///< pre-layout estimate or back-annotated caps
};

struct GroupPower {
  std::string group;
  double dynamic_uw = 0.0;
  double leakage_uw = 0.0;
};

struct PowerReport {
  double switching_uw = 0.0;  ///< net charging (0.5*C*V^2 per transition)
  double internal_uw = 0.0;   ///< cell-internal per-toggle energy
  double clock_uw = 0.0;      ///< register clock-pin energy
  double leakage_uw = 0.0;
  std::vector<GroupPower> by_group;

  [[nodiscard]] double dynamic_uw() const {
    return switching_uw + internal_uw + clock_uw;
  }
  [[nodiscard]] double total_uw() const { return dynamic_uw() + leakage_uw; }
  /// Dynamic energy per clock cycle.
  [[nodiscard]] double energy_per_cycle_fj(double freq_mhz) const {
    return dynamic_uw() * 1.0e3 / freq_mhz;  // uW / MHz = pJ -> *1e3 fJ
  }
  [[nodiscard]] double group_uw(std::string_view g) const;
};

/// Activity-based power analysis: switching power from per-net toggle
/// rates and capacitive load, internal/clock energy from the cell tables,
/// leakage from cell leakage at the analysis voltage.
[[nodiscard]] PowerReport analyze_power(const netlist::FlatNetlist& nl,
                                        const cell::Library& lib,
                                        const ActivityModel& activity,
                                        const PowerOptions& opt);

struct GroupArea {
  std::string group;
  double area_um2 = 0.0;
};

struct AreaReport {
  double total_um2 = 0.0;
  double bitcell_um2 = 0.0;
  double logic_um2 = 0.0;
  std::vector<GroupArea> by_group;
  [[nodiscard]] double group_um2(std::string_view g) const;
};

/// Cell-area roll-up (pre-layout; the layout engine reports the real
/// outline including whitespace and pitch matching).
[[nodiscard]] AreaReport analyze_area(const netlist::FlatNetlist& nl,
                                      const cell::Library& lib);

}  // namespace syndcim::power

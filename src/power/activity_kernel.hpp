#pragma once
#include <cstdint>
#include <span>
#include <vector>

#include "cell/library.hpp"
#include "netlist/flatten.hpp"
#include "power/activity.hpp"

namespace syndcim::power {

/// Temporal-correlation derating applied to the 2p(1-p) toggle estimate.
inline constexpr double kToggleDamp = 0.7;

/// One gate with its nets resolved against the library cell:
///  - in_nets/out_nets are in the cell's *canonical* pin order
///    (cell::input_pin_names / output_pin_names) whenever the cell's pin
///    names match the canonical lists, so eval_kind sees its inputs in the
///    order it defines. Cells with non-matching pin names keep liberty
///    file order (the only order available).
///  - d_net/q_net are resolved by pin role ("D"/"Q" by name, falling back
///    to first non-clock input / first output), never by position: a
///    liberty file is free to list CK before D.
struct ResolvedGate {
  const cell::Cell* cell;
  /// Views into ResolvedGates::net_pool (resolution runs on every
  /// propagation, so per-gate heap allocations are pooled away).
  std::span<const std::uint32_t> in_nets;
  std::span<const std::uint32_t> out_nets;
  std::uint32_t d_net;
  std::uint32_t q_net;
};

struct ResolvedGates {
  std::vector<ResolvedGate> gates;
  /// Nets driving clock pins, in gate order (may contain repeats).
  std::vector<std::uint32_t> clock_nets;
  /// Backing storage for every gate's in_nets/out_nets spans. Sized
  /// exactly up front and never reallocated, so the spans stay valid for
  /// the life of the ResolvedGates (including after a move).
  std::vector<std::uint32_t> net_pool;
};

[[nodiscard]] ResolvedGates resolve_gates(const netlist::FlatNetlist& nl,
                                          const cell::Library& lib);

/// Structure-of-arrays activity propagation kernel: the Gauss-Seidel
/// fixpoint of propagate_activity restructured into flat per-class loops
/// (sequential gates as (d, q) pairs; combinational gates as a CSR of
/// input nets plus one precomputed truth mask per connected output).
///
/// Bit-identity with the scalar arm: gates are visited in the same order,
/// per-combo probabilities are built by iterative doubling in the scalar
/// arm's exact left-to-right multiplication order, zero-probability combos
/// are skipped in both arms, and mask accumulation adds combos in the same
/// ascending order the scalar eval loop does.
class ActivityKernel {
 public:
  /// Throws std::logic_error for a combinational gate with more than 5
  /// connected inputs (truth masks are 32-bit; the cell library tops out
  /// at 5 with the 4:2 compressor). Use the scalar engine beyond that.
  explicit ActivityKernel(const ResolvedGates& rg);

  /// Runs the 8-pass fixpoint over all gates in netlist order.
  void run(const ActivitySpec& spec, ActivityModel& am) const;
  /// Runs the 8-pass fixpoint over a cone only (gate ids in visit order),
  /// reading settled values for everything outside it.
  void run_members(const std::vector<std::uint32_t>& members,
                   const ActivitySpec& spec, ActivityModel& am) const;

 private:
  void fixpoint(const std::uint32_t* ids, std::size_t n,
                const ActivitySpec& spec, ActivityModel& am) const;

  // Gate classes: 0 = skip (unconnected), 1 = storage, 2 = register,
  // 3 = combinational.
  std::vector<std::uint8_t> klass_;
  std::vector<std::uint32_t> seq_d_;  // per gate; valid for class 2
  std::vector<std::uint32_t> seq_q_;  // per gate; valid for classes 1-2
  std::vector<std::uint32_t> in_begin_;   // per gate + 1, into ins_
  std::vector<std::uint32_t> ins_;        // canonical-order input nets
  std::vector<std::uint32_t> out_begin_;  // per gate + 1, into outs_
  std::vector<std::uint32_t> outs_;       // connected output nets
  std::vector<std::uint32_t> masks_;      // truth mask per entry of outs_
  std::vector<std::uint32_t> all_ids_;    // 0..n-1, for run()
};

}  // namespace syndcim::power

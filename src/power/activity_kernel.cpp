#include "power/activity_kernel.hpp"

#include <stdexcept>
#include <unordered_map>

namespace syndcim::power {

using netlist::FlatNetlist;

namespace {
constexpr std::uint32_t kNoNet = UINT32_MAX;

/// True when the cell's pins can be mapped one-to-one onto the canonical
/// name lists of its kind (same counts, every canonical name present with
/// the right direction).
bool canonical_names_match(const cell::Cell& c,
                           const std::vector<std::string>& in_names,
                           const std::vector<std::string>& out_names,
                           std::size_t n_in_pins, std::size_t n_out_pins) {
  if (in_names.size() != n_in_pins || out_names.size() != n_out_pins) {
    return false;
  }
  for (const std::string& n : in_names) {
    const int pi = c.pin_index(n);
    if (pi < 0 || !c.pins[static_cast<std::size_t>(pi)].is_input) return false;
  }
  for (const std::string& n : out_names) {
    const int pi = c.pin_index(n);
    if (pi < 0 || c.pins[static_cast<std::size_t>(pi)].is_input) return false;
  }
  return true;
}
}  // namespace

ResolvedGates resolve_gates(const FlatNetlist& nl, const cell::Library& lib) {
  // All string matching (pin names, canonical lists, D/Q role lookup) is
  // hoisted to one pass over the handful of masters; the per-gate loop
  // below then runs on integer pin positions only. This function sits on
  // the per-propagation hot path for both activity engines.
  struct MasterInfo {
    const cell::Cell* cell;
    std::vector<int> pin_of_name;    // netlist pin-name id -> pin index
    std::vector<std::uint16_t> in_pos;   // pin positions of in_nets order
    std::vector<std::uint16_t> out_pos;  // pin positions of out_nets order
    std::vector<std::uint16_t> clock_pos;
    int d_pin = -1;
    int q_pin = -1;
  };
  const std::size_t n_pin_names = nl.pin_names().size();
  std::vector<MasterInfo> minfo(nl.master_names().size());
  for (std::size_t m = 0; m < minfo.size(); ++m) {
    MasterInfo& mi = minfo[m];
    mi.cell = &lib.get(nl.master_names()[m]);
    const cell::Cell& c = *mi.cell;
    mi.pin_of_name.assign(n_pin_names, -1);
    for (std::size_t id = 0; id < n_pin_names; ++id) {
      mi.pin_of_name[id] = c.pin_index(nl.pin_names()[id]);
    }

    std::size_t n_in_pins = 0;
    for (const auto& p : c.pins) n_in_pins += p.is_input ? 1 : 0;
    const std::size_t n_out_pins = c.pins.size() - n_in_pins;
    const auto in_names = cell::input_pin_names(c.kind);
    const auto out_names = cell::output_pin_names(c.kind);
    if (canonical_names_match(c, in_names, out_names, n_in_pins,
                              n_out_pins)) {
      for (const std::string& pn : in_names) {
        mi.in_pos.push_back(static_cast<std::uint16_t>(c.pin_index(pn)));
      }
      for (const std::string& pn : out_names) {
        mi.out_pos.push_back(static_cast<std::uint16_t>(c.pin_index(pn)));
      }
    } else {
      for (std::size_t i = 0; i < c.pins.size(); ++i) {
        (c.pins[i].is_input ? mi.in_pos : mi.out_pos)
            .push_back(static_cast<std::uint16_t>(i));
      }
    }

    // D/Q by role: name first, structural fallback second.
    const int dp = c.pin_index("D");
    if (dp >= 0 && c.pins[static_cast<std::size_t>(dp)].is_input) {
      mi.d_pin = dp;
    } else {
      for (std::size_t i = 0; i < c.pins.size(); ++i) {
        if (c.pins[i].is_input && !c.pins[i].is_clock) {
          mi.d_pin = static_cast<int>(i);
          break;
        }
      }
    }
    const int qp = c.pin_index("Q");
    if (qp >= 0 && !c.pins[static_cast<std::size_t>(qp)].is_input) {
      mi.q_pin = qp;
    } else {
      for (std::size_t i = 0; i < c.pins.size(); ++i) {
        if (!c.pins[i].is_input) {
          mi.q_pin = static_cast<int>(i);
          break;
        }
      }
    }
    for (std::size_t i = 0; i < c.pins.size(); ++i) {
      if (c.pins[i].is_input && c.pins[i].is_clock) {
        mi.clock_pos.push_back(static_cast<std::uint16_t>(i));
      }
    }
  }

  ResolvedGates out;
  out.gates.reserve(nl.gates().size());
  std::size_t pool_slots = 0;
  for (const auto& fg : nl.gates()) {
    pool_slots +=
        minfo[fg.master].in_pos.size() + minfo[fg.master].out_pos.size();
  }
  out.net_pool.reserve(pool_slots);  // exact: spans below must not move
  std::vector<std::uint32_t> by_pin;
  for (const auto& fg : nl.gates()) {
    const MasterInfo& mi = minfo[fg.master];
    ResolvedGate rg;
    rg.cell = mi.cell;
    by_pin.assign(mi.cell->pins.size(), kNoNet);
    for (const auto& pc : fg.pins) {
      const int pi = mi.pin_of_name[pc.pin_name];
      if (pi >= 0) by_pin[static_cast<std::size_t>(pi)] = pc.net;
    }
    const std::size_t in_off = out.net_pool.size();
    for (const std::uint16_t p : mi.in_pos) out.net_pool.push_back(by_pin[p]);
    const std::size_t out_off = out.net_pool.size();
    for (const std::uint16_t p : mi.out_pos) {
      out.net_pool.push_back(by_pin[p]);
    }
    rg.in_nets = {out.net_pool.data() + in_off, mi.in_pos.size()};
    rg.out_nets = {out.net_pool.data() + out_off, mi.out_pos.size()};
    rg.d_net = mi.d_pin >= 0 ? by_pin[static_cast<std::size_t>(mi.d_pin)]
                             : kNoNet;
    rg.q_net = mi.q_pin >= 0 ? by_pin[static_cast<std::size_t>(mi.q_pin)]
                             : kNoNet;
    for (const std::uint16_t p : mi.clock_pos) {
      if (by_pin[p] != kNoNet) out.clock_nets.push_back(by_pin[p]);
    }
    out.gates.push_back(std::move(rg));
  }
  return out;
}

ActivityKernel::ActivityKernel(const ResolvedGates& rg) {
  const std::size_t n = rg.gates.size();
  klass_.assign(n, 0);
  seq_d_.assign(n, kNoNet);
  seq_q_.assign(n, kNoNet);
  in_begin_.reserve(n + 1);
  out_begin_.reserve(n + 1);
  in_begin_.push_back(0);
  out_begin_.push_back(0);
  all_ids_.resize(n);

  // Truth masks per master cell: bit v of masks[o] is output o's value for
  // input combo v (bit i of v = canonical input i).
  std::unordered_map<const cell::Cell*, std::vector<std::uint32_t>> memo;
  auto masks_for = [&memo](const cell::Cell& c, std::size_t n_in,
                           std::size_t n_out)
      -> const std::vector<std::uint32_t>& {
    auto it = memo.find(&c);
    if (it != memo.end()) return it->second;
    std::vector<std::uint32_t> m(n_out, 0);
    std::vector<int> in_vals(n_in);
    const std::uint32_t combos = 1u << n_in;
    for (std::uint32_t v = 0; v < combos; ++v) {
      for (std::size_t i = 0; i < n_in; ++i) in_vals[i] = (v >> i) & 1;
      const auto outs = cell::eval_kind(c.kind, in_vals);
      for (std::size_t o = 0; o < n_out && o < outs.size(); ++o) {
        if (outs[o]) m[o] |= 1u << v;
      }
    }
    return memo.emplace(&c, std::move(m)).first->second;
  };

  for (std::size_t g = 0; g < n; ++g) {
    all_ids_[g] = static_cast<std::uint32_t>(g);
    const ResolvedGate& r = rg.gates[g];
    const cell::TimingRole role = r.cell->timing_role();
    if (role == cell::TimingRole::kStorage) {
      if (r.q_net != kNoNet) {
        klass_[g] = 1;
        seq_q_[g] = r.q_net;
      }
    } else if (role == cell::TimingRole::kRegister) {
      if (r.q_net != kNoNet && r.d_net != kNoNet) {
        klass_[g] = 2;
        seq_q_[g] = r.q_net;
        seq_d_[g] = r.d_net;
      }
    } else {
      bool connected = true;
      for (const std::uint32_t net : r.in_nets) {
        connected = connected && net != kNoNet;
      }
      if (connected) {
        if (r.in_nets.size() > 5) {
          throw std::logic_error(
              "ActivityKernel: combinational cell " + r.cell->name +
              " has more than 5 inputs; use the scalar engine");
        }
        klass_[g] = 3;
        for (const std::uint32_t net : r.in_nets) ins_.push_back(net);
        const auto& masks =
            masks_for(*r.cell, r.in_nets.size(), r.out_nets.size());
        for (std::size_t o = 0; o < r.out_nets.size(); ++o) {
          if (r.out_nets[o] == kNoNet) continue;
          outs_.push_back(r.out_nets[o]);
          masks_.push_back(masks[o]);
        }
      }
    }
    in_begin_.push_back(static_cast<std::uint32_t>(ins_.size()));
    out_begin_.push_back(static_cast<std::uint32_t>(outs_.size()));
  }
}

void ActivityKernel::run(const ActivitySpec& spec, ActivityModel& am) const {
  fixpoint(all_ids_.data(), all_ids_.size(), spec, am);
}

void ActivityKernel::run_members(const std::vector<std::uint32_t>& members,
                                 const ActivitySpec& spec,
                                 ActivityModel& am) const {
  fixpoint(members.data(), members.size(), spec, am);
}

void ActivityKernel::fixpoint(const std::uint32_t* ids, std::size_t n,
                              const ActivitySpec& spec,
                              ActivityModel& am) const {
  double* p1 = am.p_one.data();
  double* tr = am.toggle_rate.data();
  double probs[32];
  // Partition the visit list by class once; the eight Gauss-Seidel passes
  // then sweep compact per-class lists (in the original visit order)
  // instead of re-testing klass_ on every gate every pass.
  std::vector<std::uint32_t> seq, comb;
  seq.reserve(n);
  comb.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t g = ids[k];
    const std::uint8_t cls = klass_[g];
    if (cls == 1 || cls == 2) {
      seq.push_back(g);
    } else if (cls == 3) {
      comb.push_back(g);
    }
  }
  for (int pass = 0; pass < 8; ++pass) {
    // Sequential outputs first.
    for (const std::uint32_t g : seq) {
      if (klass_[g] == 1) {
        p1[seq_q_[g]] = spec.weight_p1;
        tr[seq_q_[g]] = 0.0;  // weights static during MAC
      } else {
        const double pd = p1[seq_d_[g]];
        p1[seq_q_[g]] = pd;
        tr[seq_q_[g]] = 2.0 * pd * (1.0 - pd) * kToggleDamp;
      }
    }
    // Combinational gates: exact P1 under independence.
    for (const std::uint32_t g : comb) {
      const std::uint32_t ib = in_begin_[g];
      const std::uint32_t n_in = in_begin_[g + 1] - ib;
      // Per-combo probabilities by iterative doubling, in the scalar
      // arm's left-to-right multiplication order.
      probs[0] = 1.0;
      std::uint32_t width = 1;
      for (std::uint32_t i = 0; i < n_in; ++i) {
        const double pi1 = p1[ins_[ib + i]];
        const double pi0 = 1.0 - pi1;
        for (std::uint32_t v = 0; v < width; ++v) {
          probs[v + width] = probs[v] * pi1;
          probs[v] *= pi0;
        }
        width <<= 1;
      }
      for (std::uint32_t o = out_begin_[g]; o < out_begin_[g + 1]; ++o) {
        const std::uint32_t m = masks_[o];
        double acc = 0.0;
        for (std::uint32_t v = 0; v < width; ++v) {
          const double pv = probs[v];
          // The scalar arm skips zero-probability combos before adding;
          // skipping here too keeps the accumulation bit-identical (a
          // -0.0 term is not a no-op against a +0.0 accumulator).
          if (pv == 0.0) continue;
          if ((m >> v) & 1u) acc += pv;
        }
        const std::uint32_t net = outs_[o];
        p1[net] = acc;
        tr[net] = 2.0 * acc * (1.0 - acc) * kToggleDamp;
      }
    }
  }
}

}  // namespace syndcim::power

#pragma once
#include <cstddef>
#include <string>
#include <string_view>

#include "power/activity.hpp"
#include "power/power.hpp"

namespace syndcim::power {

// Stable binary codecs for the sim/power artifact payloads (activity and
// act_models tiers; Power/Area reports ride inside the powers composite).
// Doubles are raw IEEE-754 bit patterns — a replayed activity model is
// bit-identical to the propagated one. Decoders throw
// core::BinDecodeError.

[[nodiscard]] std::string encode_activity_model(const ActivityModel& m);
[[nodiscard]] ActivityModel decode_activity_model(std::string_view payload);

[[nodiscard]] std::string encode_group_activity(
    const GroupActivityArtifact& a);
[[nodiscard]] GroupActivityArtifact decode_group_activity(
    std::string_view payload);

[[nodiscard]] std::string encode_power_report(const PowerReport& p);
[[nodiscard]] PowerReport decode_power_report(std::string_view payload);

[[nodiscard]] std::string encode_area_report(const AreaReport& a);
[[nodiscard]] AreaReport decode_area_report(std::string_view payload);

[[nodiscard]] std::size_t deep_bytes(const ActivityModel& m);
[[nodiscard]] std::size_t deep_bytes(const GroupActivityArtifact& a);
[[nodiscard]] std::size_t deep_bytes(const PowerReport& p);
[[nodiscard]] std::size_t deep_bytes(const AreaReport& a);

}  // namespace syndcim::power

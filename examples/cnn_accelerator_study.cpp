// System-level study (paper intro: DCIM "system-level acceleration"):
// map a small CNN onto arrays of compiled macros and compare two compiler
// preference points — showing how the spec-oriented synthesis propagates
// to application-level latency and energy.
#include <iostream>

#include "cell/characterize.hpp"
#include "core/artifacts.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "mapper/mapper.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

// A compact CNN (conv layers im2col'ed to GEMMs), INT8.
std::vector<mapper::Layer> make_network() {
  return {
      //        name        m (pixels)  k        n    ib wb density
      {"conv1", 32 * 32, 3 * 3 * 3, 16, 8, 8, 0.8},
      {"conv2", 16 * 16, 3 * 3 * 16, 32, 8, 8, 0.45},
      {"conv3", 8 * 8, 3 * 3 * 32, 64, 8, 8, 0.35},
      {"conv4", 4 * 4, 3 * 3 * 64, 128, 8, 8, 0.3},
      {"fc", 1, 4 * 4 * 128, 10, 8, 8, 0.5},
  };
}

}  // namespace

int main() {
  const auto library =
      cell::characterize_default_library(tech::make_default_40nm());
  core::SynDcimCompiler compiler(library);
  const auto network = make_network();

  std::cout << "=== CNN accelerator study: preference points compared ===\n";
  struct Scenario {
    const char* name;
    double freq_mhz;
    double vdd;
    core::PpaPreference pref;
    int n_macros;
  };
  const Scenario scenarios[] = {
      {"edge  (power-pref, 0.8V, 1 macro)", 200.0, 0.8, {1.0, 0.3, 0.0}, 1},
      {"cloud (perf-pref, 0.9V, 4 macros)", 400.0, 0.9, {0.2, 0.2, 1.0}, 4},
  };

  core::TextTable t({"scenario", "macro", "fmax_MHz", "macro_uW",
                     "net_time_us", "net_energy_uJ", "GOPS",
                     "TOPS/W(int8)"});
  for (const Scenario& sc : scenarios) {
    core::PerfSpec spec;
    spec.rows = 64;
    spec.cols = 64;
    spec.mcr = 2;
    spec.input_bits = {4, 8};
    spec.weight_bits = {4, 8};
    spec.mac_freq_mhz = sc.freq_mhz;
    spec.wupdate_freq_mhz = sc.freq_mhz;
    spec.vdd = sc.vdd;
    spec.pref = sc.pref;
    const auto res = compiler.compile(spec);
    const auto prof =
        mapper::MacroProfile::from_implementation(res.impl, sc.freq_mhz);
    const auto rep = mapper::map_network(network, prof, sc.n_macros);
    t.add_row({sc.name, res.selected.label,
               core::TextTable::num(res.impl.fmax_mhz, 0),
               core::TextTable::num(res.impl.total_power_uw, 0),
               core::TextTable::num(rep.total_time_us, 1),
               core::TextTable::num(rep.total_energy_uj, 2),
               core::TextTable::num(rep.effective_gops(), 2),
               core::TextTable::num(rep.effective_tops_per_w(), 2)});

    if (&sc == &scenarios[0]) {
      std::cout << "\nper-layer mapping (" << sc.name << "):\n";
      core::TextTable lt({"layer", "tiles(kxn)", "cycles", "exposed loads",
                          "util", "time_us", "energy_uJ"});
      for (const auto& [l, lm] : rep.layers) {
        lt.add_row({l.name,
                    std::to_string(lm.k_tiles) + "x" +
                        std::to_string(lm.n_tiles),
                    std::to_string(lm.total_cycles),
                    std::to_string(lm.exposed_load_cycles),
                    core::TextTable::num(lm.utilization, 2),
                    core::TextTable::num(lm.time_us, 1),
                    core::TextTable::num(lm.energy_uj, 3)});
      }
      lt.print(std::cout);
      std::cout << "\n";
    }
  }
  t.print(std::cout);

  std::cout << "\nDouble buffering check (MCR=2 hides weight streaming):\n";
  core::PerfSpec spec;
  spec.rows = 64;
  spec.cols = 64;
  spec.input_bits = {4, 8};
  spec.weight_bits = {4, 8};
  spec.mac_freq_mhz = 200;
  spec.wupdate_freq_mhz = 200;
  for (const int mcr : {1, 2}) {
    spec.mcr = mcr;
    const auto res = compiler.compile(spec);
    const auto prof =
        mapper::MacroProfile::from_implementation(res.impl, 200.0);
    const auto rep = mapper::map_network(network, prof, 1);
    std::cout << "  MCR=" << mcr << ": "
              << core::TextTable::num(rep.total_time_us, 1) << " us\n";
  }
  return 0;
}

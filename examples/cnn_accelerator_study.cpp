// System-level study (paper intro: DCIM "system-level acceleration"):
// map a small CNN onto fleets of compiled macros through the netmap API
// and compare budget points — showing how the spec-oriented synthesis
// propagates to application-level latency and energy, and what the
// heterogeneous allocator buys over the best single-macro-type fleet.
//
// Usage: cnn_accelerator_study [model.json]
//   (default model: examples/models/tiny_cnn.json)
#include <iostream>
#include <map>
#include <string>

#include "cell/characterize.hpp"
#include "core/diag.hpp"
#include "core/report.hpp"
#include "dse/sweep.hpp"
#include "netmap/model.hpp"
#include "netmap/netmap.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main(int argc, char** argv) {
  const std::string model_path =
      argc > 1 ? argv[1] : "examples/models/tiny_cnn.json";
  core::DiagEngine diag;
  const netmap::Model model = netmap::parse_model_file(model_path, diag);
  if (diag.has_errors()) {
    diag.print(std::cerr);
    return 1;
  }
  std::cout << "=== CNN accelerator study: " << model.name << " ("
            << model.layers.size() << " layers, " << model.total_macs()
            << " MACs) ===\n";

  // Candidate pool: one sweep across clock / MCR / preference — the
  // multi-spec DSE becomes the inner loop of the fleet compiler.
  std::map<std::string, std::string> kv = {
      {"rows", "64"},          {"cols", "64"},
      {"input_bits", "4,8"},   {"weight_bits", "4,8"},
      {"sweep_mac_mhz", "200,400"}, {"sweep_mcr", "1,2"},
      {"sweep_pref", "power,perf"},
  };
  const auto lib =
      cell::characterize_default_library(tech::make_default_40nm());
  dse::SweepOptions sopt;
  sopt.lint_frontier = false;  // the pool only needs the points
  const dse::SweepReport rep =
      dse::run_sweep(lib, dse::grid_from_kv(std::move(kv)).expand(), sopt);
  const auto cands = netmap::candidates_from_frontier(rep);
  std::cout << "candidate pool: " << cands.size()
            << " frontier macro types\n\n";

  struct Scenario {
    const char* name;
    int budget_macros;
  };
  const Scenario scenarios[] = {
      {"edge  (1-macro budget)", 1},
      {"cloud (4-macro budget)", 4},
  };

  core::TextTable t({"scenario", "fleet", "net_time_us", "net_energy_uJ",
                     "util_%", "homog_energy_uJ", "het_gain_%"});
  for (const Scenario& sc : scenarios) {
    netmap::NetmapOptions nopt;
    nopt.budget.max_macros = sc.budget_macros;
    const netmap::NetmapResult res = netmap::run_netmap(model, cands, nopt);
    const double gain =
        res.homog.valid && res.homog.energy_pj > 0
            ? 100.0 * (res.homog.energy_pj - res.total_energy_pj) /
                  res.homog.energy_pj
            : 0.0;
    t.add_row({sc.name,
               std::to_string(res.fleet_macros) + " macros/" +
                   std::to_string(res.fleet.size()) + " types",
               core::TextTable::num(res.total_time_us, 1),
               core::TextTable::num(res.total_energy_pj * 1e-6, 3),
               core::TextTable::num(100.0 * res.utilization, 1),
               core::TextTable::num(res.homog.energy_pj * 1e-6, 3),
               core::TextTable::num(gain, 2)});

    if (&sc == &scenarios[1]) {
      std::cout << "per-layer mapping (" << sc.name << "):\n";
      core::TextTable lt({"layer", "macro", "count", "tiles(kxn)",
                          "dbl_buf", "time_us", "energy_uJ", "util_%"});
      for (const netmap::LayerAssignment& la : res.layers) {
        const netmap::Layer& l = res.model.layers[la.layer_index];
        const netmap::MacroCandidate& c = res.candidates[la.candidate_index];
        lt.add_row({l.name, c.label, std::to_string(la.count),
                    std::to_string(la.grid.k_tiles) + "x" +
                        std::to_string(la.grid.n_tiles),
                    core::TextTable::yesno(la.sched.double_buffered),
                    core::TextTable::num(la.time_us, 2),
                    core::TextTable::num(la.energy_pj() * 1e-6, 4),
                    core::TextTable::num(100.0 * la.utilization, 1)});
      }
      lt.print(std::cout);
      std::cout << "\n";
    }
  }
  t.print(std::cout);
  std::cout << "\n(the heterogeneous fleet never loses to the best\n"
               " homogeneous one on energy — the allocator enforces it)\n";
  return 0;
}

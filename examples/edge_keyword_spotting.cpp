// Edge scenario (paper intro: "wearable devices"): an always-on keyword-
// spotting feature extractor. A small, power-preferred macro runs a dense
// INT4 layer; the example reports per-inference energy and battery-life
// implications — the kind of system-level numbers a DCIM compiler user
// derives from the compiler's post-layout report.
#include <iostream>
#include <random>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "sim/macro_model.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main() {
  const auto library =
      cell::characterize_default_library(tech::make_default_40nm());

  // A wearable budget: low voltage, modest clock, power above all.
  core::PerfSpec spec;
  spec.rows = 32;
  spec.cols = 32;
  spec.mcr = 2;  // double-buffered weights: stream layer B while A computes
  spec.input_bits = {4};
  spec.weight_bits = {4};
  spec.vdd = 0.7;
  spec.mac_freq_mhz = 50.0;
  spec.wupdate_freq_mhz = 50.0;
  spec.pref = {1.0, 0.1, 0.0};  // power-preferred

  core::SynDcimCompiler compiler(library);
  core::Workload wl;
  wl.input_bits = 4;
  wl.weight_bits = 4;
  wl.input_density = 0.3;  // post-ReLU activations are sparse
  const auto result = compiler.compile(spec, wl);
  std::cout << "KWS macro: " << result.selected.label << "\n";
  std::cout << "  " << core::TextTable::num(result.impl.total_power_uw, 1)
            << " uW @ " << spec.mac_freq_mhz << " MHz, " << spec.vdd
            << " V, area "
            << core::TextTable::num(result.impl.macro_area_mm2 * 1e6, 0)
            << " um^2\n\n";

  // KWS feature layer: 64 -> 8 dense, INT4, mapped as two row-tiles onto
  // the 32x32 macro (8 outputs x 4 weight bits = 32 columns).
  const int in_dim = 64, out_dim = 8, wp = 4, ib = 4;
  sim::DcimMacroModel model(result.selected.cfg);
  std::mt19937 rng(5);
  auto rnd4 = [&] { return static_cast<std::int64_t>(rng() % 16) - 8; };

  // Per-tile weight matrices (rows 0..31 and 32..63 of the layer).
  std::vector<std::vector<std::vector<std::int64_t>>> tiles(2);
  for (auto& t : tiles) {
    t.resize(out_dim);
    for (auto& w : t) {
      w.resize(32);
      for (auto& v : w) v = rnd4();
    }
  }

  // Run 25 frames of 10ms audio features.
  const int frames = 25;
  std::int64_t checksum = 0;
  long macs = 0;
  for (int f = 0; f < frames; ++f) {
    std::vector<std::int64_t> x(in_dim);
    for (auto& v : x) v = rnd4();
    std::vector<std::int64_t> y(out_dim, 0);
    for (int tile = 0; tile < 2; ++tile) {
      model.load_weights_int(tile % spec.mcr, wp, tiles[tile]);
      const std::vector<std::int64_t> xt(x.begin() + tile * 32,
                                         x.begin() + (tile + 1) * 32);
      const auto part = model.mac_int(xt, ib, wp, tile % spec.mcr);
      for (int o = 0; o < out_dim; ++o) {
        y[static_cast<std::size_t>(o)] += part[static_cast<std::size_t>(o)];
      }
      macs += 32 * out_dim;
    }
    checksum += y[0] + y[7];
  }

  // Energy accounting from the post-layout report.
  const double cycles_per_mac_group = ib + 4.0;  // load + serial + capture
  const double groups = 2.0 * frames;            // two tiles per frame
  const double e_per_cycle_fj =
      result.impl.power.energy_per_cycle_fj(spec.mac_freq_mhz);
  const double e_inference_nj =
      groups * cycles_per_mac_group * e_per_cycle_fj * 1e-6 / frames;
  std::cout << frames << " frames processed, " << macs
            << " MACs, checksum " << checksum << "\n";
  std::cout << "energy/inference ~ " << core::TextTable::num(e_inference_nj, 2)
            << " nJ (dynamic)\n";
  const double duty_power_uw =
      result.impl.total_power_uw * 0.05 +  // 5% active duty cycle
      result.impl.power.leakage_uw * 0.95;
  std::cout << "always-on @5% duty ~ "
            << core::TextTable::num(duty_power_uw, 1)
            << " uW -> a 100 mAh coin cell (1.5 V) lasts ~"
            << core::TextTable::num(100e-3 * 1.5 / (duty_power_uw * 1e-6) /
                                        24.0 / 365.0,
                                    1)
            << " years on this layer alone\n";
  return 0;
}

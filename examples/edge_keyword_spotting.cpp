// Edge scenario (paper intro: "wearable devices"): an always-on keyword-
// spotting network mapped through the netmap API. A small, power-
// preferred macro pool feeds the fleet allocator under a one-macro
// budget; the example reports per-inference energy and battery-life
// implications — the kind of system-level numbers a DCIM compiler user
// derives from the compiler's network-level report.
//
// Usage: edge_keyword_spotting [model.json]
//   (default model: examples/models/kws.json)
#include <iostream>
#include <map>
#include <string>

#include "cell/characterize.hpp"
#include "core/diag.hpp"
#include "core/report.hpp"
#include "dse/sweep.hpp"
#include "netmap/model.hpp"
#include "netmap/netmap.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main(int argc, char** argv) {
  const std::string model_path =
      argc > 1 ? argv[1] : "examples/models/kws.json";
  core::DiagEngine diag;
  const netmap::Model model = netmap::parse_model_file(model_path, diag);
  if (diag.has_errors()) {
    diag.print(std::cerr);
    return 1;
  }

  // A wearable budget: low voltage, modest clock, power above all. The
  // grid still spans MCR so the allocator may pick double buffering.
  std::map<std::string, std::string> kv = {
      {"rows", "32"},        {"cols", "32"},
      {"input_bits", "4"},   {"weight_bits", "4"},
      {"mac_mhz", "50"},     {"wupdate_mhz", "50"},
      {"vdd", "0.7"},        {"pref_power", "1.0"},
      {"pref_area", "0.1"},  {"sweep_mcr", "1,2"},
  };
  const auto lib =
      cell::characterize_default_library(tech::make_default_40nm());
  dse::SweepOptions sopt;
  sopt.lint_frontier = false;
  const dse::SweepReport rep =
      dse::run_sweep(lib, dse::grid_from_kv(std::move(kv)).expand(), sopt);
  const auto cands = netmap::candidates_from_frontier(rep);

  netmap::NetmapOptions nopt;
  nopt.budget.max_macros = 1;  // one physical macro on the wearable
  const netmap::NetmapResult res = netmap::run_netmap(model, cands, nopt);

  const netmap::FleetEntry& fe = res.fleet.front();
  const netmap::MacroCandidate& mc = res.candidates[fe.candidate_index];
  std::cout << "KWS macro: " << mc.label << " (" << mc.rows << "x" << mc.cols
            << ", MCR=" << mc.mcr << ")\n  "
            << core::TextTable::num(mc.power_uw, 1) << " uW @ "
            << core::TextTable::num(mc.mac_mhz, 0) << " MHz, area "
            << core::TextTable::num(mc.area_um2, 0) << " um^2\n\n";

  std::cout << model.name << ": " << model.layers.size() << " layers, "
            << model.total_macs() << " MACs/inference\n";
  for (const netmap::LayerAssignment& la : res.layers) {
    const netmap::Layer& l = res.model.layers[la.layer_index];
    std::cout << "  " << l.name << ": " << la.grid.k_tiles << "x"
              << la.grid.n_tiles << " tiles, "
              << core::TextTable::num(la.time_us, 2) << " us, "
              << core::TextTable::num(la.energy_pj(), 1) << " pJ\n";
  }

  // One inference = one pass over the chain; energy straight from the
  // netmap evaluator (MAC + weight-update + dead energy).
  const double e_inference_nj = res.total_energy_pj * 1e-3;
  std::cout << "energy/inference ~ " << core::TextTable::num(e_inference_nj, 2)
            << " nJ in " << core::TextTable::num(res.total_time_us, 2)
            << " us (utilization "
            << core::TextTable::num(100.0 * res.utilization, 1) << "%)\n";

  // Always-on duty cycling: 100 inferences/s of audio frames; the macro
  // sleeps between them at ~10% of its active power (retention).
  const double inf_per_s = 100.0;
  const double active_frac = inf_per_s * res.total_time_us * 1e-6;
  const double duty_power_uw =
      mc.power_uw * active_frac + 0.1 * mc.power_uw * (1.0 - active_frac);
  std::cout << "always-on @" << core::TextTable::num(inf_per_s, 0)
            << " inf/s ~ " << core::TextTable::num(duty_power_uw, 2)
            << " uW -> a 100 mAh coin cell (1.5 V) lasts ~"
            << core::TextTable::num(
                   100e-3 * 1.5 / (duty_power_uw * 1e-6) / 24.0 / 365.0, 1)
            << " years on this network alone\n";
  return 0;
}

// Design-space exploration: the DSE loop the paper's Fig. 2 sits inside.
// Sweeps array shape, frequency target and voltage; prints a CSV of the
// merged Pareto cloud so it can be plotted or fed to a system-level
// mapper. Shows the SCL's caching making repeated searches cheap.
#include <chrono>
#include <iostream>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main() {
  const auto library =
      cell::characterize_default_library(tech::make_default_40nm());
  core::SynDcimCompiler compiler(library);

  std::cout << "dim,mcr,freq_mhz,vdd,label,feasible,fmax_mhz,power_uw,"
               "area_um2,tops_1b,tops_per_w,latency_cycles\n";

  const auto t0 = std::chrono::steady_clock::now();
  int searches = 0, points = 0;
  for (const int dim : {32, 64}) {
    for (const int mcr : {1, 2}) {
      for (const double freq : {200.0, 400.0}) {
        for (const double vdd : {0.8, 0.9}) {
          core::PerfSpec spec;
          spec.rows = dim;
          spec.cols = dim;
          spec.mcr = mcr;
          spec.input_bits = {4, 8};
          spec.weight_bits = {4, 8};
          spec.mac_freq_mhz = freq;
          spec.wupdate_freq_mhz = freq;
          spec.vdd = vdd;
          const auto res = compiler.search(spec);
          ++searches;
          for (const auto& p : res.pareto) {
            ++points;
            std::cout << dim << ',' << mcr << ',' << freq << ',' << vdd
                      << ',' << p.label << ',' << (p.feasible ? 1 : 0) << ','
                      << core::TextTable::num(p.ppa.fmax_mhz, 0) << ','
                      << core::TextTable::num(p.ppa.power_uw, 0) << ','
                      << core::TextTable::num(p.ppa.area_um2, 0) << ','
                      << core::TextTable::num(p.ppa.tops_1b, 3) << ','
                      << core::TextTable::num(p.ppa.tops_per_w(), 1) << ','
                      << p.ppa.latency_cycles << "\n";
          }
        }
      }
    }
  }
  const auto dt = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::cerr << searches << " searches, " << points
            << " Pareto points in " << core::TextTable::num(dt, 1)
            << " s (" << compiler.scl().cache_entries()
            << " cached slice characterizations)\n";
  return 0;
}

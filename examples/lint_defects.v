// Deliberately broken netlist exercising the three classic structural
// defects the linter must catch (used by CI and tests/lint_test.cpp):
//   - md      driven by both u_md_a and u_md_b        -> LINT-MULTIDRIVE
//   - floatn  loaded by u_float but never driven      -> LINT-FLOATING
//   - loop_a/loop_b  inverter ring with no register   -> LINT-COMB-LOOP
// `syndcim lint examples/lint_defects.v` must exit non-zero and report
// all three rule ids.
module lint_defects (in1, in2, in3, clk, out1, out2, out3, out4);
  input in1;
  input in2;
  input in3;
  input clk;
  output out1;
  output out2;
  output out3;
  output out4;
  wire md;
  wire floatn;
  wire loop_a;
  wire loop_b;
  INVX1 u_md_a (.A(in1), .Y(md));
  INVX1 u_md_b (.A(in2), .Y(md));
  INVX1 u_md_use (.A(md), .Y(out1));
  INVX1 u_float (.A(floatn), .Y(out2));
  INVX1 u_loop_1 (.A(loop_a), .Y(loop_b));
  INVX1 u_loop_2 (.A(loop_b), .Y(loop_a));
  INVX1 u_loop_use (.A(loop_b), .Y(out4));
  DFFX1 u_reg (.D(in3), .CK(clk), .Q(out3));
endmodule

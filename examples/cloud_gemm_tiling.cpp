// Cloud scenario (paper intro: "cloud computing"): a BF16 GEMM tiled onto
// a throughput-preferred macro. Uses the behavioral macro model (bit-exact
// with the generated netlist, as the test suite proves) so a full GEMM
// runs in milliseconds, and reports the accelerator-level throughput
// implied by the compiled macro's post-layout frequency.
#include <cmath>
#include <iostream>
#include <random>

#include "cell/characterize.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "num/alignment.hpp"
#include "num/fp_format.hpp"
#include "sim/macro_model.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main() {
  const auto library =
      cell::characterize_default_library(tech::make_default_40nm());

  // Throughput-preferred BF16 macro.
  core::PerfSpec spec;
  spec.rows = 64;
  spec.cols = 64;
  spec.mcr = 2;
  spec.input_bits = {8};
  spec.weight_bits = {8};
  spec.fp_formats = {num::kBf16};
  spec.mac_freq_mhz = 250.0;
  spec.wupdate_freq_mhz = 250.0;
  spec.pref = {0.2, 0.2, 1.0};  // performance-preferred

  core::SynDcimCompiler compiler(library);
  const auto search = compiler.search(spec);
  if (!search.feasible()) {
    std::cout << "spec infeasible\n";
    return 1;
  }
  const auto& pick = search.best(spec.pref);
  std::cout << "BF16 GEMM macro: " << pick.label << ", est fmax "
            << core::TextTable::num(pick.ppa.fmax_mhz, 0) << " MHz\n\n";

  // GEMM: C[M,N] = A[M,K] x B[K,N] in BF16, K tiled by rows=64 and N
  // tiled by the macro's output groups.
  sim::DcimMacroModel model(pick.cfg);
  const int wp = pick.cfg.max_weight_bits();
  const int outs_per_tile = pick.cfg.cols / wp;
  const int M = 8, K = 128, N = outs_per_tile * 2;
  std::mt19937 rng(11);
  auto rnd_bf16 = [&] {
    return num::fp_encode((static_cast<double>(rng() % 2000) - 1000.0) / 250.0,
                          num::kBf16);
  };
  std::vector<std::vector<std::uint32_t>> A(M), B(K);
  for (auto& row : A) {
    row.resize(K);
    for (auto& v : row) v = rnd_bf16();
  }
  for (auto& row : B) {
    row.resize(N);
    for (auto& v : row) v = rnd_bf16();
  }

  std::vector<std::vector<double>> C(M, std::vector<double>(N, 0.0));
  const int k_tiles = K / spec.rows;
  const int n_tiles = N / outs_per_tile;
  for (int nt = 0; nt < n_tiles; ++nt) {
    for (int kt = 0; kt < k_tiles; ++kt) {
      // Load the B tile as FP weights (aligned per output group).
      std::vector<std::vector<std::uint32_t>> wtile(outs_per_tile);
      for (int o = 0; o < outs_per_tile; ++o) {
        wtile[static_cast<std::size_t>(o)].resize(spec.rows);
        for (int r = 0; r < spec.rows; ++r) {
          wtile[static_cast<std::size_t>(o)][static_cast<std::size_t>(r)] =
              B[static_cast<std::size_t>(kt * spec.rows + r)]
               [static_cast<std::size_t>(nt * outs_per_tile + o)];
        }
      }
      model.load_weights_fp(0, num::kBf16, wtile);
      for (int m = 0; m < M; ++m) {
        std::vector<std::uint32_t> x(
            A[static_cast<std::size_t>(m)].begin() + kt * spec.rows,
            A[static_cast<std::size_t>(m)].begin() + (kt + 1) * spec.rows);
        const auto res = model.mac_fp(x, num::kBf16, 0);
        for (int o = 0; o < outs_per_tile; ++o) {
          C[static_cast<std::size_t>(m)]
           [static_cast<std::size_t>(nt * outs_per_tile + o)] +=
              res.value(static_cast<std::size_t>(o));
        }
      }
    }
  }

  // Accuracy vs double-precision reference.
  double max_rel = 0.0;
  for (int m = 0; m < M; ++m) {
    for (int n = 0; n < N; ++n) {
      double exact = 0.0, mag = 0.0;
      for (int k = 0; k < K; ++k) {
        const double a = num::fp_decode(
            A[static_cast<std::size_t>(m)][static_cast<std::size_t>(k)],
            num::kBf16);
        const double b = num::fp_decode(
            B[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)],
            num::kBf16);
        exact += a * b;
        mag += std::abs(a * b);
      }
      if (mag > 0) {
        max_rel = std::max(
            max_rel,
            std::abs(C[static_cast<std::size_t>(m)]
                      [static_cast<std::size_t>(n)] -
                     exact) /
                mag);
      }
    }
  }
  std::cout << "GEMM " << M << "x" << K << "x" << N
            << " done; max relative alignment error "
            << core::TextTable::num(100 * max_rel, 3) << "% of |C| mass\n";

  // Throughput accounting at the compiled frequency.
  const int ib = num::aligned_mant_bits(num::kBf16, spec.fp_guard_bits);
  const double cycles =
      static_cast<double>(n_tiles) * k_tiles *
      (spec.rows + 2.0 /*write pipeline*/ + M * (ib + 5.0));
  const double t_us = cycles / pick.ppa.fmax_mhz;
  const double macs = 1.0 * M * K * N;
  std::cout << "at " << core::TextTable::num(pick.ppa.fmax_mhz, 0)
            << " MHz: " << core::TextTable::num(cycles, 0) << " cycles = "
            << core::TextTable::num(t_us, 1) << " us -> "
            << core::TextTable::num(2.0 * macs / t_us * 1e-3, 2)
            << " BF16 GOPS/macro (weight reload included)\n";
  return max_rel < 0.05 ? 0 : 1;
}

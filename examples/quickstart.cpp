// Quickstart: specification -> searched architecture -> placed macro ->
// signoff numbers, then a functional MAC on the generated gate-level
// netlist checked against the behavioral model.
#include <iostream>
#include <random>

#include "cell/characterize.hpp"
#include "core/artifacts.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "sim/macro_tb.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

int main() {
  // 1. Characterize the technology's cell library (the paper's custom-cell
  //    characterization flow, producing NLDM-style tables).
  const auto library =
      cell::characterize_default_library(tech::make_default_40nm());

  // 2. Describe what you want: architecture parameters + performance
  //    constraints (paper Fig. 2's input specification).
  core::PerfSpec spec;
  spec.rows = 32;                    // H: inputs per dot product
  spec.cols = 32;                    // W: weight-bit columns
  spec.mcr = 2;                      // two storage banks per compute bit
  spec.input_bits = {4, 8};          // serial input precisions
  spec.weight_bits = {4, 8};         // weight precisions
  spec.mac_freq_mhz = 400.0;         // MAC clock target @ 0.9 V
  spec.wupdate_freq_mhz = 400.0;     // weight-update clock target
  spec.pref = {1.0, 0.5, 0.0};       // lean toward low power

  // 3. Compile: multi-spec-oriented search -> Pareto set -> selected
  //    design -> SDP placement -> DRC/LVS -> post-layout STA and power.
  core::SynDcimCompiler compiler(library);
  const core::CompileResult result = compiler.compile(spec);

  std::cout << "searched " << result.search.explored.size()
            << " design points, " << result.search.pareto.size()
            << " on the Pareto frontier\n";
  std::cout << "selected: " << result.selected.label << "\n";
  for (const auto& step : result.selected.applied) {
    std::cout << "  applied " << step << "\n";
  }
  std::cout << "\npost-layout signoff:\n";
  std::cout << "  fmax      " << core::TextTable::num(result.impl.fmax_mhz, 0)
            << " MHz (target " << spec.mac_freq_mhz << ")\n";
  std::cout << "  area      "
            << core::TextTable::num(result.impl.macro_area_mm2, 4)
            << " mm^2 (" << result.impl.floorplan.gate_rects.size()
            << " placed cells)\n";
  std::cout << "  power     "
            << core::TextTable::num(result.impl.total_power_uw, 0)
            << " uW at the target clock\n";
  std::cout << "  DRC " << (result.impl.drc.clean() ? "clean" : "DIRTY")
            << ", LVS " << (result.impl.lvs.clean() ? "clean" : "DIRTY")
            << ", timing "
            << (result.impl.timing.met() ? "met" : "violated") << "\n";

  // 4. Use the macro: load weights, run an INT8 x INT8 matrix-vector
  //    product on the actual generated netlist, cross-check the math.
  sim::DcimMacroModel model(result.selected.cfg);
  sim::MacroTestbench tb(result.impl.macro, library);
  std::mt19937 rng(1);
  const int wp = 8, ib = 8;
  const int n_out = spec.cols / wp;
  std::vector<std::vector<std::int64_t>> weights(n_out);
  for (auto& w : weights) {
    w.resize(spec.rows);
    for (auto& v : w) v = static_cast<std::int64_t>(rng() % 256) - 128;
  }
  model.load_weights_int(0, wp, weights);
  tb.preload_weights(model);
  std::vector<std::int64_t> x(spec.rows);
  for (auto& v : x) v = static_cast<std::int64_t>(rng() % 256) - 128;

  const auto y_gate = tb.run_mac_int(x, ib, wp, 0);
  const auto y_model = model.mac_int(x, ib, wp, 0);
  std::cout << "\nINT8 matrix-vector product (gate level vs model):\n  y = [";
  bool all_ok = true;
  for (int o = 0; o < n_out; ++o) {
    std::cout << (o ? ", " : "") << y_gate[static_cast<std::size_t>(o)];
    all_ok &= y_gate[static_cast<std::size_t>(o)] ==
              y_model[static_cast<std::size_t>(o)];
  }
  std::cout << "]  -> " << (all_ok ? "MATCH" : "MISMATCH") << "\n";

  // 5. Hand off to a back-end flow: netlist, constraints, placement
  //    script, DEF, library and the compile report.
  const auto files =
      core::write_artifacts(result, spec, library, "syndcim_out");
  std::cout << "\nartifacts written:\n";
  for (const auto& f : files) std::cout << "  " << f << "\n";
  return all_ok ? 0 : 1;
}

// Command-line front end of the compiler: reads a specification from a
// key=value file (or inline arguments), runs the multi-spec-oriented
// search + implementation, prints the Pareto frontier and writes the
// back-end artifact bundle.
//
// Subcommands (run `syndcim <subcommand> --help` for details):
//   syndcim [compile] --spec macro.spec [--out DIR] [--search-only]
//   syndcim [compile] rows=64 cols=64 mcr=2 mac_mhz=400 [--out DIR]
//   syndcim sweep [base spec keys] [sweep_mac_mhz=...] [sweep_mcr=...]
//           [sweep_bits=...] [sweep_pref=...] [--threads N]
//           [--cache FILE] [--no-cache] [--json FILE]
//           [--frontier-json FILE]
//   syndcim netmap --model model.json [--frontier-json FILE |
//           base spec keys + sweep_* grid keys] [--budget-macros N]
//           [--budget-area UM2] [--threads N] [--json FILE]
//   syndcim lint <netlist.v> [--top NAME] [--lib FILE] [--json FILE]
//           [--write-clock PORT]
//   syndcim serve [--port N] [--workers N] [--queue-cap N] ...
//   syndcim --version | --help
//
// Every subcommand additionally accepts the common observability options
// `--trace FILE` (Chrome trace-event JSON, loads in chrome://tracing and
// ui.perfetto.dev) and `--metrics FILE` (versioned metrics-registry
// JSON); either one enables instrumentation for the run.
//
// Spec keys: rows, cols, mcr, input_bits (comma list), weight_bits,
// fp (fp4|fp8|bf16|fp16, comma list), mac_mhz, wupdate_mhz, vdd,
// pref_power, pref_area, pref_perf, bitcell (6T|8T|12T),
// mux (pg|tg|oai22), temp_c.
//
// Sweep grid keys (comma lists; `;` separates precision groups):
//   sweep_mac_mhz=250,350,450    MAC frequency dimension
//   sweep_mcr=1,2                memory-compute-ratio dimension
//   sweep_bits=4;8;4,8           precision dimension (input+weight bits)
//   sweep_pref=balanced,power    PPA preference dimension
//                                (balanced|power|area|perf)
// The sweep runs every grid point's search on a work-stealing pool with
// a shared memoized evaluation cache and prints a JSON report (global
// Pareto frontier + per-spec summaries + cache/pool statistics).
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "cell/characterize.hpp"
#include "cell/liberty_parser.hpp"
#include "core/artifacts.hpp"
#include "core/compiler.hpp"
#include "core/diag.hpp"
#include "core/report.hpp"
#include "core/spec.hpp"
#include "dse/shard.hpp"
#include "dse/sweep.hpp"
#include "lint/lint.hpp"
#include "netlist/verilog_parser.hpp"
#include "netmap/model.hpp"
#include "netmap/netmap.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "serve/signals.hpp"
#include "tech/tech_node.hpp"

#ifndef SYNDCIM_VERSION
#define SYNDCIM_VERSION "0.0.0"
#endif
#ifndef SYNDCIM_GIT_SHA
#define SYNDCIM_GIT_SHA "unknown"
#endif

using namespace syndcim;

namespace {

// ---------------------------------------------------------------------------
// Usage blocks — one uniform format per subcommand.
// ---------------------------------------------------------------------------

constexpr const char* kCommonOptions =
    "  common options (every subcommand):\n"
    "    --trace FILE      enable observability and write a Chrome\n"
    "                      trace-event JSON (chrome://tracing, Perfetto)\n"
    "    --metrics FILE    enable observability and write the metrics\n"
    "                      registry JSON (counters/gauges/histograms)\n"
    "    --help, -h        show this subcommand's usage\n";

void usage_compile(std::ostream& os) {
  os << "usage: syndcim [compile] [--spec FILE] [key=value ...]\n"
        "               [--out DIR] [--sim-lanes N] [--search-only]\n"
        "               [common options]\n"
        "  options:\n"
        "    --spec FILE       read key=value spec lines from FILE\n"
        "    --out DIR         artifact bundle directory (default\n"
        "                      syndcim_out)\n"
        "    --sim-lanes N     bit-parallel simulation lanes for the\n"
        "                      power workload, 1..64 (default 1; the\n"
        "                      scalar-identical schedule)\n"
        "    --search-only     print the Pareto frontier, skip\n"
        "                      implementation\n"
        "    key=value         inline spec keys (rows, cols, mcr,\n"
        "                      input_bits, weight_bits, fp, mac_mhz,\n"
        "                      wupdate_mhz, vdd, pref_power, pref_area,\n"
        "                      pref_perf, bitcell, mux, temp_c)\n"
     << kCommonOptions
     << "  exit status: 0 signoff-clean, 1 infeasible/dirty, 2 usage/IO\n";
}

void usage_sweep(std::ostream& os) {
  os << "usage: syndcim sweep [--spec FILE] [key=value ...]\n"
        "               [sweep_mac_mhz=...] [sweep_mcr=...]\n"
        "               [sweep_bits=...] [sweep_pref=...] [--threads N]\n"
        "               [--cache FILE] [--no-cache] [--json FILE]\n"
        "               [--frontier-json FILE] [--store-dir DIR]\n"
        "               [--shard I/N --shard-out FILE]\n"
        "               [--merge-shards FILE...] [common options]\n"
        "  options:\n"
        "    --threads N       worker threads (default: hardware)\n"
        "    --cache FILE      warm-start/persist the evaluation cache\n"
        "    --no-cache        disable evaluation memoization\n"
        "    --no-artifact-cache  disable the subcircuit-artifact tier\n"
        "    --json FILE       full sweep report JSON (default: stdout)\n"
        "    --frontier-json FILE  deterministic global-frontier JSON\n"
        "    --store-dir DIR   durable on-disk artifact store: a repeat\n"
        "                      sweep over the same grid starts warm, and\n"
        "                      concurrent shards share it as their cache\n"
        "    --shard I/N       evaluate only the specs with global grid\n"
        "                      index == I (mod N); pair with --shard-out\n"
        "                      and merge the N files with --merge-shards\n"
        "    --shard-out FILE  write this shard's Pareto sets (binary)\n"
        "    --merge-shards FILE...  fold shard files into the global\n"
        "                      frontier (byte-identical to one process\n"
        "                      sweeping the whole grid); no sweep is run\n"
        "    sweep_mac_mhz=250,350  MAC frequency grid dimension\n"
        "    sweep_mcr=1,2          memory-compute-ratio dimension\n"
        "    sweep_bits=4;8;4,8     precision groups (`;`-separated)\n"
        "    sweep_pref=balanced,power  preference presets\n"
     << kCommonOptions
     << "  exit status: 0 any spec feasible, 1 none feasible, 2 usage/IO\n";
}

void usage_netmap(std::ostream& os) {
  os << "usage: syndcim netmap --model FILE\n"
        "               [--frontier-json FILE | [--spec FILE]\n"
        "               [key=value ...] [sweep_* grid keys]]\n"
        "               [--budget-macros N] [--budget-area UM2]\n"
        "               [--threads N] [--cache FILE] [--no-cache]\n"
        "               [--json FILE] [common options]\n"
        "  options:\n"
        "    --model FILE      syndcim-model v1 layer-graph JSON (required)\n"
        "    --frontier-json FILE  reuse a persisted `syndcim sweep\n"
        "                      --frontier-json` pool instead of sweeping\n"
        "    key=value / sweep_*   inline sweep grid (same keys as\n"
        "                      `syndcim sweep`) when no frontier file\n"
        "    --budget-macros N total owned macros across types (default 8)\n"
        "    --budget-area UM2 total owned silicon budget (default: none)\n"
        "    --threads N       inline-sweep worker threads\n"
        "    --cache FILE      warm-start/persist the evaluation cache\n"
        "    --no-cache        disable evaluation memoization\n"
        "    --json FILE       syndcim-netmap v1 report (default: stdout)\n"
     << kCommonOptions
     << "  exit status: 0 mapped, 1 model/frontier/mapping errors,\n"
        "               2 usage/IO\n";
}

void usage_lint(std::ostream& os) {
  os << "usage: syndcim lint <netlist.v> [--top NAME] [--lib FILE]\n"
        "               [--json FILE] [--write-clock PORT]\n"
        "               [common options]\n"
        "  options:\n"
        "    --top NAME        top module (default: inferred root)\n"
        "    --lib FILE        Liberty cell library (default: built-in)\n"
        "    --json FILE       machine-readable diagnostics JSON\n"
        "    --write-clock PORT  weight-update clock for CDC checks\n"
     << kCommonOptions
     << "  exit status: 0 clean, 1 error findings, 2 usage/IO\n";
}

void usage_serve(std::ostream& os) {
  os << "usage: syndcim serve [--port N] [--host H] [--workers N]\n"
        "               [--queue-cap N] [--sweep-threads N] [--max-conn N]\n"
        "               [--cache-cap-entries N] [--cache-cap-bytes N]\n"
        "               [--deadline-ms N] [--store-dir DIR]\n"
        "               [common options]\n"
        "  options:\n"
        "    --port N          TCP port (default 0: ephemeral; the bound\n"
        "                      port is printed as `port=N` on stdout)\n"
        "    --host H          bind address (default 127.0.0.1)\n"
        "    --workers N       request worker threads (default 2)\n"
        "    --queue-cap N     admitted-request cap; beyond it new\n"
        "                      requests are rejected with 429 (default 32)\n"
        "    --sweep-threads N threads each in-request sweep may use\n"
        "                      (default 2)\n"
        "    --max-conn N      concurrent connection cap (default 64)\n"
        "    --cache-cap-entries N  per-tier artifact cache entry cap\n"
        "                      (0 = unlimited; LRU eviction past it)\n"
        "    --cache-cap-bytes N    per-tier artifact cache byte cap\n"
        "    --deadline-ms N   default per-request deadline (0 = none)\n"
        "    --store-dir DIR   durable on-disk artifact store; a\n"
        "                      restarted daemon answers repeated requests\n"
        "                      warm (dirty artifacts flushed on drain)\n"
     << kCommonOptions
     << "  the daemon serves syndcim-serve v1 (newline-delimited JSON;\n"
        "  methods compile/sweep/lint/metrics/status/shutdown) until\n"
        "  SIGINT/SIGTERM or a shutdown request, then drains gracefully\n"
        "  (stops accepting, finishes in-flight work, flushes --trace/\n"
        "  --metrics artifacts)\n"
        "  exit status: 0 drained cleanly, 2 socket/usage errors\n";
}

void usage_global(std::ostream& os) {
  os << "usage: syndcim <subcommand> [options]\n"
        "  subcommands:\n"
        "    compile (default)  spec -> search -> implementation ->\n"
        "                       artifact bundle\n"
        "    sweep              parallel multi-spec grid exploration\n"
        "    netmap             map a NN model onto a macro fleet\n"
        "    lint               static netlist checks\n"
        "    serve              multi-tenant compile daemon (NDJSON/TCP)\n"
        "    --version          print build version and git commit\n"
        "    --help, -h         this overview\n"
     << kCommonOptions
     << "  run `syndcim <subcommand> --help` for subcommand options\n";
}

void read_spec_file(const std::string& path,
                    std::map<std::string, std::string>& kv) {
  std::ifstream f(path);
  if (!f) {
    throw std::invalid_argument("cannot open spec file " + path);
  }
  std::string line;
  while (std::getline(f, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t");
      const auto e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    kv[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
  }
}

/// Arguments after the subcommand name, with the common observability
/// options already stripped by main().
using Args = std::vector<std::string>;

/// Shared tail of the sweep and merge-shards paths: frontier table on
/// stderr, report/frontier JSON files, buffered CACHE-* findings, and the
/// feasibility exit status.
int emit_sweep_outputs(const dse::SweepReport& rep,
                       const std::string& json_path,
                       const std::string& frontier_path,
                       const core::DiagEngine& diag) {
  core::TextTable t({"spec", "MHz", "mcr", "label", "power_uW", "area_um2",
                     "fmax_MHz"});
  for (const dse::FrontierPoint& fp : rep.frontier) {
    const core::PerfSpec& s = rep.per_spec[fp.spec_index].spec;
    t.add_row({std::to_string(fp.spec_index),
               core::TextTable::num(s.mac_freq_mhz, 0),
               std::to_string(s.mcr), fp.point.label,
               core::TextTable::num(fp.point.ppa.power_uw, 0),
               core::TextTable::num(fp.point.ppa.area_um2, 0),
               core::TextTable::num(fp.point.ppa.fmax_mhz, 0)});
  }
  t.print(std::cerr);

  for (const core::Diagnostic& d : diag.diags()) {
    std::cerr << core::severity_name(d.severity) << " [" << d.rule << "] "
              << d.message << " (" << d.object << ")\n";
  }
  if (!rep.store_json.empty()) {
    std::cerr << "store: " << rep.store_json << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << dse::sweep_report_json(rep);
    std::cerr << "wrote " << json_path << "\n";
  } else {
    std::cout << dse::sweep_report_json(rep);
  }
  if (!frontier_path.empty()) {
    std::ofstream f(frontier_path);
    f << dse::sweep_frontier_json(rep);
    std::cerr << "wrote " << frontier_path << "\n";
  }
  bool any_feasible = false;
  for (const dse::SpecResult& sr : rep.per_spec) {
    any_feasible = any_feasible || sr.result.feasible();
  }
  return any_feasible ? 0 : 1;
}

int run_sweep_command(const Args& args) {
  std::map<std::string, std::string> kv;
  dse::SweepOptions opt;
  std::string json_path, frontier_path, shard_out;
  bool merge_mode = false;
  std::vector<std::string> merge_paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      usage_sweep(std::cout);
      return 0;
    } else if (a == "--spec" && i + 1 < args.size()) {
      read_spec_file(args[++i], kv);
    } else if (a == "--threads" && i + 1 < args.size()) {
      try {
        opt.threads = std::stoi(args[++i]);
      } catch (const std::exception&) {
        std::cerr << "error: --threads wants an integer, got '" << args[i]
                  << "'\n";
        return 2;
      }
    } else if (a == "--cache" && i + 1 < args.size()) {
      opt.cache_path = args[++i];
    } else if (a == "--no-cache") {
      opt.use_cache = false;
    } else if (a == "--no-artifact-cache") {
      opt.use_artifact_cache = false;
    } else if (a == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else if (a == "--frontier-json" && i + 1 < args.size()) {
      frontier_path = args[++i];
    } else if (a == "--store-dir" && i + 1 < args.size()) {
      opt.store_dir = args[++i];
    } else if (a == "--shard" && i + 1 < args.size()) {
      const std::string v = args[++i];
      const auto slash = v.find('/');
      bool ok = slash != std::string::npos;
      if (ok) {
        try {
          opt.shard_index = std::stoul(v.substr(0, slash));
          opt.shard_count = std::stoul(v.substr(slash + 1));
        } catch (const std::exception&) {
          ok = false;
        }
      }
      if (!ok || opt.shard_count == 0 ||
          opt.shard_index >= opt.shard_count) {
        std::cerr << "error: --shard wants I/N with 0 <= I < N, got '" << v
                  << "'\n";
        return 2;
      }
    } else if (a == "--shard-out" && i + 1 < args.size()) {
      shard_out = args[++i];
    } else if (a == "--merge-shards") {
      merge_mode = true;
    } else if (merge_mode && a.rfind("--", 0) != 0) {
      merge_paths.push_back(a);
    } else if (a.find('=') != std::string::npos) {
      const auto eq = a.find('=');
      kv[a.substr(0, eq)] = a.substr(eq + 1);
    } else {
      std::cerr << "unknown sweep argument: " << a << "\n";
      usage_sweep(std::cerr);
      return 2;
    }
  }

  if (merge_mode) {
    if (merge_paths.empty()) {
      std::cerr << "error: --merge-shards wants shard file paths\n";
      usage_sweep(std::cerr);
      return 2;
    }
    const auto lib =
        cell::characterize_default_library(tech::make_default_40nm());
    core::DiagEngine diag;
    dse::MergeOptions mopt;
    mopt.store_dir = opt.store_dir;
    mopt.diag = &diag;
    dse::SweepReport rep;
    try {
      rep = dse::merge_shards(lib, merge_paths, mopt);
    } catch (const std::exception& e) {
      std::cerr << "error: merge-shards: " << e.what() << "\n";
      return 2;
    }
    std::cerr << "merged " << merge_paths.size() << " shard files: "
              << rep.frontier.size() << " frontier points from "
              << rep.per_spec.size() << " specs\n";
    return emit_sweep_outputs(rep, json_path, frontier_path, diag);
  }

  const dse::SweepGrid grid = dse::grid_from_kv(std::move(kv));
  const std::vector<core::PerfSpec> specs = grid.expand();
  // Ctrl-C / SIGTERM trips the process-wide token: the sweep returns
  // early with whatever completed and the reports below still flush.
  opt.cancel = &serve::interrupt_token();
  core::DiagEngine diag;
  opt.diag = &diag;
  // A shard's frontier is partial — the merge lints the real one.
  if (opt.shard_count > 1) opt.lint_frontier = false;
  std::cerr << "sweep: " << specs.size() << " spec points, threads="
            << (opt.threads > 0 ? opt.threads
                                : dse::WorkStealingPool::default_threads())
            << ", cache=" << (opt.use_cache ? "on" : "off");
  if (!opt.cache_path.empty()) std::cerr << " (" << opt.cache_path << ")";
  if (!opt.store_dir.empty()) std::cerr << ", store=" << opt.store_dir;
  if (opt.shard_count > 1) {
    std::cerr << ", shard=" << opt.shard_index << "/" << opt.shard_count;
  }
  std::cerr << "\n";

  const auto lib =
      cell::characterize_default_library(tech::make_default_40nm());
  const dse::SweepReport rep = dse::run_sweep(lib, specs, opt);

  // Cache effectiveness and pool behaviour, read back from the metrics
  // registry the sweep published into (`dse.cache.*` / `dse.pool.*`).
  obs::MetricsRegistry& m = obs::metrics();
  const std::uint64_t hits = m.counter("dse.cache.hit").value();
  const std::uint64_t misses = m.counter("dse.cache.miss").value();
  const std::uint64_t inflight = m.counter("dse.cache.inflight_wait").value();
  const double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  std::cerr << "frontier: " << rep.frontier.size() << " points from "
            << rep.per_spec.size() << " specs, " << rep.n_tasks
            << " trajectory tasks in " << core::TextTable::num(rep.wall_ms, 0)
            << " ms; cache " << hits << " hits / " << misses << " misses / "
            << inflight << " in-flight waits ("
            << core::TextTable::num(100.0 * hit_rate, 1)
            << "% hit rate), pool stole "
            << m.counter("dse.pool.steal").value() << " of "
            << m.counter("dse.pool.execute").value() << " tasks\n";

  // Tiered cache roll-up: the whole-config evaluation cache sits above
  // the content-addressed subcircuit-artifact store; a config that misses
  // the first tier usually still shares most subcircuit artifacts.
  const std::uint64_t art_hits = m.counter("dse.artifact.hit").value();
  const std::uint64_t art_misses = m.counter("dse.artifact.miss").value();
  const double art_rate =
      art_hits + art_misses > 0
          ? static_cast<double>(art_hits) /
                static_cast<double>(art_hits + art_misses)
          : 0.0;
  std::cerr << "cache tiers: whole-config " << hits
            << " hits; subcircuit artifacts " << art_hits << " hits / "
            << art_misses << " misses ("
            << core::TextTable::num(100.0 * art_rate, 1) << "% hit rate";
  if (!opt.use_artifact_cache) std::cerr << ", tier disabled";
  std::cerr << ")\n";

  if (!shard_out.empty()) {
    const dse::ShardResult sr =
        dse::make_shard_result(specs, rep, opt.shard_index, opt.shard_count);
    if (!dse::write_shard_file(shard_out, sr)) {
      std::cerr << "error: cannot write shard file " << shard_out << "\n";
      return 2;
    }
    std::cerr << "wrote " << shard_out << " (" << sr.owned.size() << " of "
              << specs.size() << " specs)\n";
  }

  const int rc = emit_sweep_outputs(rep, json_path, frontier_path, diag);
  if (rep.cancelled && serve::shutdown_signal() != 0) {
    std::cerr << "sweep interrupted (signal " << serve::shutdown_signal()
              << "); partial report written\n";
    return 128 + serve::shutdown_signal();
  }
  return rc;
}

/// `syndcim netmap`: map a layer-graph model onto a heterogeneous macro
/// fleet. The candidate pool comes from a persisted frontier JSON or an
/// inline sweep (same grid keys as `syndcim sweep`); the report JSON is
/// byte-identical to what the serve daemon's `netmap` method returns for
/// the same inputs.
int run_netmap_command(const Args& args) {
  std::map<std::string, std::string> kv;
  dse::SweepOptions sopt;
  netmap::NetmapOptions nopt;
  std::string model_path, frontier_path, json_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto int_arg = [&](const char* name, auto* out) -> bool {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << name << " wants a value\n";
        return false;
      }
      try {
        *out = static_cast<std::remove_pointer_t<decltype(out)>>(
            std::stod(args[++i]));
      } catch (const std::exception&) {
        std::cerr << "error: " << name << " wants a number, got '" << args[i]
                  << "'\n";
        return false;
      }
      return true;
    };
    if (a == "--help" || a == "-h") {
      usage_netmap(std::cout);
      return 0;
    } else if (a == "--model" && i + 1 < args.size()) {
      model_path = args[++i];
    } else if (a == "--frontier-json" && i + 1 < args.size()) {
      frontier_path = args[++i];
    } else if (a == "--budget-macros") {
      if (!int_arg("--budget-macros", &nopt.budget.max_macros)) return 2;
    } else if (a == "--budget-area") {
      if (!int_arg("--budget-area", &nopt.budget.max_area_um2)) return 2;
    } else if (a == "--threads") {
      if (!int_arg("--threads", &sopt.threads)) return 2;
    } else if (a == "--spec" && i + 1 < args.size()) {
      try {
        read_spec_file(args[++i], kv);
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    } else if (a == "--cache" && i + 1 < args.size()) {
      sopt.cache_path = args[++i];
    } else if (a == "--no-cache") {
      sopt.use_cache = false;
    } else if (a == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else if (a.find('=') != std::string::npos) {
      const auto eq = a.find('=');
      kv[a.substr(0, eq)] = a.substr(eq + 1);
    } else {
      std::cerr << "unknown netmap argument: " << a << "\n";
      usage_netmap(std::cerr);
      return 2;
    }
  }
  if (model_path.empty()) {
    std::cerr << "error: netmap wants --model FILE\n";
    usage_netmap(std::cerr);
    return 2;
  }

  core::DiagEngine diag;
  const netmap::Model model = netmap::parse_model_file(model_path, diag);
  if (diag.has_errors()) {
    diag.print(std::cerr);
    std::cerr << model_path << ": " << diag.summary() << "\n";
    return 1;
  }
  std::cerr << "model: " << model.name << ", " << model.layers.size()
            << " layers, " << model.total_macs() << " MACs\n";

  std::vector<netmap::MacroCandidate> cands;
  if (!frontier_path.empty()) {
    std::ifstream ff(frontier_path);
    if (!ff) {
      std::cerr << "error: cannot open " << frontier_path << "\n";
      return 2;
    }
    std::ostringstream fs;
    fs << ff.rdbuf();
    cands = netmap::candidates_from_frontier_json(fs.str(), diag,
                                                  frontier_path);
    if (diag.has_errors()) {
      diag.print(std::cerr);
      std::cerr << frontier_path << ": " << diag.summary() << "\n";
      return 1;
    }
  } else {
    const dse::SweepGrid grid = dse::grid_from_kv(std::move(kv));
    const std::vector<core::PerfSpec> specs = grid.expand();
    // Candidates only need the frontier points themselves — the lint
    // annotations never reach the netmap report (this also keeps the
    // report byte-identical to the serve daemon's, which skips the
    // frontier lint for the same reason).
    sopt.lint_frontier = false;
    sopt.cancel = &serve::interrupt_token();
    std::cerr << "sweep: " << specs.size() << " spec points for the "
              << "candidate pool\n";
    const auto lib =
        cell::characterize_default_library(tech::make_default_40nm());
    const dse::SweepReport rep = dse::run_sweep(lib, specs, sopt);
    if (rep.cancelled && serve::shutdown_signal() != 0) {
      std::cerr << "netmap interrupted (signal " << serve::shutdown_signal()
                << ")\n";
      return 128 + serve::shutdown_signal();
    }
    cands = netmap::candidates_from_frontier(rep);
  }
  std::cerr << "candidates: " << cands.size() << " frontier macro types\n";

  netmap::NetmapResult res;
  try {
    res = netmap::run_netmap(model, cands, nopt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  // Human summary: one row per layer, then the fleet + homog baseline.
  core::TextTable t({"layer", "kind", "macro", "count", "tiles", "time_us",
                     "energy_pj", "util_%"});
  for (const netmap::LayerAssignment& la : res.layers) {
    const netmap::Layer& l = res.model.layers[la.layer_index];
    const netmap::MacroCandidate& c = res.candidates[la.candidate_index];
    t.add_row({l.name, netmap::to_string(l.kind), c.label,
               std::to_string(la.count), std::to_string(la.grid.tiles()),
               core::TextTable::num(la.time_us, 2),
               core::TextTable::num(la.energy_pj(), 1),
               core::TextTable::num(100.0 * la.utilization, 1)});
  }
  t.print(std::cerr);
  std::cerr << "fleet: " << res.fleet_macros << " macros across "
            << res.fleet.size() << " types, "
            << core::TextTable::num(res.fleet_area_um2, 0) << " um^2\n"
            << "total: " << core::TextTable::num(res.total_time_us, 2)
            << " us, " << core::TextTable::num(res.total_energy_pj, 1)
            << " pJ, utilization "
            << core::TextTable::num(100.0 * res.utilization, 1) << "%\n";
  if (res.homog.valid) {
    const netmap::MacroCandidate& h = res.candidates[res.homog.candidate_index];
    std::cerr << "homog baseline: " << h.label << " x" << res.homog.count
              << ", " << core::TextTable::num(res.homog.time_us, 2) << " us, "
              << core::TextTable::num(res.homog.energy_pj, 1) << " pJ"
              << (res.fallback_homog ? " (adopted: budget too tight for a "
                                       "heterogeneous fleet)"
                                     : "")
              << "\n";
  }

  const std::string report = netmap::netmap_report_json(res);
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    f << report;
    std::cerr << "wrote " << json_path << "\n";
  } else {
    std::cout << report;
  }
  return 0;
}

/// `syndcim lint`: static netlist checks with no implementation flow.
/// Exit 0 = clean (warnings allowed), 1 = error-severity findings,
/// 2 = usage / IO problems.
int run_lint_command(const Args& args) {
  std::string netlist_path, top, lib_path, json_path, write_clock;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      usage_lint(std::cout);
      return 0;
    } else if (a == "--top" && i + 1 < args.size()) {
      top = args[++i];
    } else if (a == "--lib" && i + 1 < args.size()) {
      lib_path = args[++i];
    } else if (a == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else if (a == "--write-clock" && i + 1 < args.size()) {
      write_clock = args[++i];
    } else if (!a.empty() && a[0] != '-' && netlist_path.empty()) {
      netlist_path = a;
    } else {
      std::cerr << "unknown lint argument: " << a << "\n";
      usage_lint(std::cerr);
      return 2;
    }
  }
  if (netlist_path.empty()) {
    usage_lint(std::cerr);
    return 2;
  }

  std::ifstream vf(netlist_path);
  if (!vf) {
    std::cerr << "error: cannot open " << netlist_path << "\n";
    return 2;
  }
  core::DiagEngine diag;
  const netlist::Design design = netlist::parse_verilog(vf, &diag);

  const cell::Library lib = [&] {
    if (!lib_path.empty()) {
      std::ifstream lf(lib_path);
      if (!lf) {
        throw std::invalid_argument("cannot open library " + lib_path);
      }
      return cell::parse_liberty(lf, tech::make_default_40nm(), &diag);
    }
    return cell::characterize_default_library(tech::make_default_40nm());
  }();

  // Top inference: the unique module never instantiated as a submodule.
  const std::vector<std::string> modules = design.module_names();
  if (top.empty()) {
    std::vector<std::string> roots;
    for (const std::string& name : modules) {
      bool used = false;
      for (const std::string& other : modules) {
        for (const auto& inst : design.module(other).instances()) {
          used = used || (!inst.is_cell && inst.master == name);
        }
      }
      if (!used) roots.push_back(name);
    }
    if (roots.size() == 1) {
      top = roots.front();
    } else if (modules.empty()) {
      diag.error("LINT-STRUCT", "netlist contains no modules",
                 netlist_path, "lint");
    } else {
      std::string list;
      for (const std::string& r : roots) {
        list += (list.empty() ? "" : ", ") + r;
      }
      std::cerr << "error: cannot infer top module (candidates: " << list
                << "); pass --top\n";
      return 2;
    }
  }

  lint::LintOptions lopt;
  lopt.write_clock = write_clock;
  if (!top.empty()) {
    (void)lint::lint_design(design, top, diag, lopt);
    if (design.has_module(top)) {
      // Flattening a structurally broken hierarchy can throw; the
      // hierarchy-level findings above already explain why.
      try {
        const netlist::FlatNetlist flat = netlist::flatten(design, top);
        (void)lint::lint_netlist(flat, lib, diag, lopt);
      } catch (const std::exception& e) {
        diag.error("LINT-STRUCT",
                   std::string("cannot flatten for netlist-level checks: ") +
                       e.what(),
                   top, "lint");
      }
    }
  }

  diag.print(std::cerr);
  if (!json_path.empty()) {
    std::ofstream jf(json_path);
    if (!jf) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    jf << diag.to_json();
    std::cerr << "wrote " << json_path << "\n";
  }
  std::cerr << netlist_path << ": " << diag.summary() << "\n";
  return diag.has_errors() ? 1 : 0;
}

int run_compile_command(const Args& args) {
  std::map<std::string, std::string> kv;
  std::string out_dir = "syndcim_out";
  bool search_only = false;
  int sim_lanes = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      usage_compile(std::cout);
      return 0;
    } else if (a == "--spec" && i + 1 < args.size()) {
      try {
        read_spec_file(args[++i], kv);
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    } else if (a == "--out" && i + 1 < args.size()) {
      out_dir = args[++i];
    } else if (a == "--search-only") {
      search_only = true;
    } else if (a == "--sim-lanes" && i + 1 < args.size()) {
      try {
        sim_lanes = std::stoi(args[++i]);
      } catch (...) {
        sim_lanes = 0;
      }
      if (sim_lanes < 1 || sim_lanes > 64) {
        std::cerr << "error: --sim-lanes wants an integer in [1, 64], got '"
                  << args[i] << "'\n";
        return 2;
      }
    } else if (a.find('=') != std::string::npos) {
      const auto eq = a.find('=');
      kv[a.substr(0, eq)] = a.substr(eq + 1);
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      usage_compile(std::cerr);
      return 2;
    }
  }

  try {
    const core::PerfSpec spec = core::spec_from_kv(kv);
    std::cerr << "spec: " << spec.rows << "x" << spec.cols
              << " MCR=" << spec.mcr << " @ " << spec.mac_freq_mhz
              << " MHz, " << spec.vdd << " V\n";
    const auto lib =
        cell::characterize_default_library(tech::make_default_40nm());
    core::SynDcimCompiler compiler(lib);

    if (search_only) {
      const auto res = compiler.search(spec);
      core::TextTable t({"label", "feasible", "fmax_MHz", "power_uW",
                         "area_um2"});
      for (const auto& p : res.pareto) {
        t.add_row({p.label, core::TextTable::yesno(p.feasible),
                   core::TextTable::num(p.ppa.fmax_mhz, 0),
                   core::TextTable::num(p.ppa.power_uw, 0),
                   core::TextTable::num(p.ppa.area_um2, 0)});
      }
      t.print(std::cout);
      return res.feasible() ? 0 : 1;
    }

    core::Workload workload;
    workload.lanes = sim_lanes;
    const auto result =
        compiler.compile(spec, workload, &serve::interrupt_token());
    std::cout << "selected " << result.selected.label << " ("
              << result.search.pareto.size() << " Pareto points)\n";
    std::cout << "post-layout: fmax "
              << core::TextTable::num(result.impl.fmax_mhz, 0) << " MHz, "
              << core::TextTable::num(result.impl.macro_area_mm2, 4)
              << " mm^2, "
              << core::TextTable::num(result.impl.total_power_uw, 0)
              << " uW, DRC " << (result.impl.drc.clean() ? "clean" : "DIRTY")
              << ", LVS " << (result.impl.lvs.clean() ? "clean" : "DIRTY")
              << ", timing "
              << (result.impl.timing.met() ? "met" : "VIOLATED") << "\n";
    // Where the compile's time and memory went, phase by phase.
    std::cerr << "phases:";
    for (const obs::Phase& p : result.impl.timeline.phases) {
      std::cerr << " " << p.name << "="
                << core::TextTable::num(p.dur_ms, 1) << "ms";
    }
    if (!result.impl.timeline.phases.empty()) {
      std::cerr << " (peak rss "
                << result.impl.timeline.phases.back().rss_peak_kb
                << " kB)";
    }
    std::cerr << "\n";
    for (const auto& f :
         core::write_artifacts(result, spec, lib, out_dir)) {
      std::cout << "wrote " << f << "\n";
    }
    return result.impl.signoff_clean() ? 0 : 1;
  } catch (const core::CancelledError& e) {
    // Interrupted mid-pipeline: report where, let main() flush the
    // observability artifacts, exit with the conventional 128 + signal.
    std::cerr << "compile interrupted (" << e.what() << ")\n";
    const int sig = serve::shutdown_signal();
    return sig != 0 ? 128 + sig : 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

/// `syndcim serve`: the multi-tenant compile daemon. Blocks until
/// SIGINT/SIGTERM or a protocol `shutdown` request, then drains.
int run_serve_command(const Args& args, const std::string& trace_path,
                      const std::string& metrics_path) {
  serve::ServerOptions sopt;
  sopt.trace_path = trace_path;
  sopt.metrics_path = metrics_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto int_arg = [&](const char* name, auto* out) -> bool {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << name << " wants a value\n";
        return false;
      }
      try {
        *out = static_cast<std::remove_pointer_t<decltype(out)>>(
            std::stoll(args[++i]));
      } catch (const std::exception&) {
        std::cerr << "error: " << name << " wants an integer, got '"
                  << args[i] << "'\n";
        return false;
      }
      return true;
    };
    if (a == "--help" || a == "-h") {
      usage_serve(std::cout);
      return 0;
    } else if (a == "--port") {
      if (!int_arg("--port", &sopt.port)) return 2;
    } else if (a == "--host" && i + 1 < args.size()) {
      sopt.host = args[++i];
    } else if (a == "--workers") {
      if (!int_arg("--workers", &sopt.workers)) return 2;
    } else if (a == "--queue-cap") {
      if (!int_arg("--queue-cap", &sopt.queue_capacity)) return 2;
    } else if (a == "--sweep-threads") {
      if (!int_arg("--sweep-threads", &sopt.sweep_threads)) return 2;
    } else if (a == "--max-conn") {
      if (!int_arg("--max-conn", &sopt.max_connections)) return 2;
    } else if (a == "--cache-cap-entries") {
      if (!int_arg("--cache-cap-entries", &sopt.artifact_max_entries)) {
        return 2;
      }
    } else if (a == "--cache-cap-bytes") {
      if (!int_arg("--cache-cap-bytes", &sopt.artifact_max_bytes)) return 2;
    } else if (a == "--store-dir" && i + 1 < args.size()) {
      sopt.store_dir = args[++i];
    } else if (a == "--deadline-ms") {
      if (i + 1 >= args.size()) {
        std::cerr << "error: --deadline-ms wants a value\n";
        return 2;
      }
      try {
        sopt.default_deadline_ms = std::stod(args[++i]);
      } catch (const std::exception&) {
        std::cerr << "error: --deadline-ms wants a number\n";
        return 2;
      }
    } else {
      std::cerr << "unknown serve argument: " << a << "\n";
      usage_serve(std::cerr);
      return 2;
    }
  }

  const auto lib =
      cell::characterize_default_library(tech::make_default_40nm());
  serve::Server server(lib, sopt);
  std::string err;
  if (!server.start(&err)) {
    std::cerr << "error: " << err << "\n";
    return 2;
  }
  // Machine-readable port line first (stdout, flushed) so wrappers can
  // connect to an ephemeral port; the human banner goes to stderr.
  std::cout << "port=" << server.port() << "\n" << std::flush;
  std::cerr << "syndcim serve: listening on " << sopt.host << ":"
            << server.port() << " (workers=" << sopt.workers
            << ", queue-cap=" << sopt.queue_capacity
            << ", sweep-threads=" << sopt.sweep_threads << ")\n";
  const int rc = server.serve_forever(&serve::interrupt_token());
  std::cerr << "syndcim serve: drained\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the common observability options first so every subcommand
  // accepts them uniformly; either flag enables instrumentation.
  std::string trace_path, metrics_path;
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (a == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      args.push_back(a);
    }
  }
  if (!trace_path.empty() || !metrics_path.empty()) {
    obs::set_enabled(true);
    obs::tracer().set_thread_name("main");
  }
  // SIGINT/SIGTERM trip the process-wide CancelToken; batch commands
  // return partial results and still flush their reports below, the
  // serve daemon drains gracefully.
  serve::install_shutdown_handlers();

  int rc = 2;
  try {
    if (!args.empty() && args[0] == "--version") {
      std::cout << "syndcim " << SYNDCIM_VERSION << " (" << SYNDCIM_GIT_SHA
                << ")\n";
      rc = 0;
    } else if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) {
      usage_global(std::cout);
      rc = 0;
    } else if (!args.empty() && args[0] == "lint") {
      rc = run_lint_command({args.begin() + 1, args.end()});
    } else if (!args.empty() && args[0] == "sweep") {
      rc = run_sweep_command({args.begin() + 1, args.end()});
    } else if (!args.empty() && args[0] == "netmap") {
      rc = run_netmap_command({args.begin() + 1, args.end()});
    } else if (!args.empty() && args[0] == "serve") {
      rc = run_serve_command({args.begin() + 1, args.end()}, trace_path,
                             metrics_path);
    } else if (!args.empty() && args[0] == "compile") {
      rc = run_compile_command({args.begin() + 1, args.end()});
    } else {
      rc = run_compile_command(args);  // bare invocation = compile
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 2;
  }

  // Emit observability artifacts even when the command failed — a trace
  // of a failing run is exactly what one wants to look at.
  if (!trace_path.empty()) {
    if (obs::tracer().save(trace_path)) {
      std::cerr << "wrote " << trace_path << "\n";
    } else {
      std::cerr << "error: cannot write " << trace_path << "\n";
      rc = rc == 0 ? 2 : rc;
    }
  }
  if (!metrics_path.empty()) {
    if (obs::metrics().save(metrics_path)) {
      std::cerr << "wrote " << metrics_path << "\n";
    } else {
      std::cerr << "error: cannot write " << metrics_path << "\n";
      rc = rc == 0 ? 2 : rc;
    }
  }
  return rc;
}

// Command-line front end of the compiler: reads a specification from a
// key=value file (or inline arguments), runs the multi-spec-oriented
// search + implementation, prints the Pareto frontier and writes the
// back-end artifact bundle.
//
// Usage:
//   syndcim --spec macro.spec [--out DIR] [--search-only]
//   syndcim rows=64 cols=64 mcr=2 mac_mhz=400 [--out DIR]
//
// Spec keys: rows, cols, mcr, input_bits (comma list), weight_bits,
// fp (fp4|fp8|bf16|fp16, comma list), mac_mhz, wupdate_mhz, vdd,
// pref_power, pref_area, pref_perf, bitcell (6T|8T|12T),
// mux (pg|tg|oai22), temp_c.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cell/characterize.hpp"
#include "core/artifacts.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "tech/tech_node.hpp"

using namespace syndcim;

namespace {

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}

core::PerfSpec spec_from_kv(const std::map<std::string, std::string>& kv) {
  core::PerfSpec spec;
  for (const auto& [k, v] : kv) {
    if (k == "rows") {
      spec.rows = std::stoi(v);
    } else if (k == "cols") {
      spec.cols = std::stoi(v);
    } else if (k == "mcr") {
      spec.mcr = std::stoi(v);
    } else if (k == "input_bits") {
      spec.input_bits = parse_int_list(v);
    } else if (k == "weight_bits") {
      spec.weight_bits = parse_int_list(v);
    } else if (k == "fp") {
      std::stringstream ss(v);
      std::string f;
      while (std::getline(ss, f, ',')) {
        if (f == "fp4") {
          spec.fp_formats.push_back(num::kFp4);
        } else if (f == "fp8") {
          spec.fp_formats.push_back(num::kFp8);
        } else if (f == "bf16") {
          spec.fp_formats.push_back(num::kBf16);
        } else if (f == "fp16") {
          spec.fp_formats.push_back(num::kFp16);
        } else {
          throw std::invalid_argument("unknown fp format: " + f);
        }
      }
    } else if (k == "mac_mhz") {
      spec.mac_freq_mhz = std::stod(v);
    } else if (k == "wupdate_mhz") {
      spec.wupdate_freq_mhz = std::stod(v);
    } else if (k == "vdd") {
      spec.vdd = std::stod(v);
    } else if (k == "pref_power") {
      spec.pref.power = std::stod(v);
    } else if (k == "pref_area") {
      spec.pref.area = std::stod(v);
    } else if (k == "pref_perf") {
      spec.pref.performance = std::stod(v);
    } else if (k == "bitcell") {
      spec.bitcell = v == "8T" ? rtlgen::BitcellKind::k8T
                     : v == "12T" ? rtlgen::BitcellKind::k12T
                                  : rtlgen::BitcellKind::k6T;
    } else if (k == "mux") {
      spec.mux = v == "pg"      ? rtlgen::MuxStyle::kPassGate1T
                 : v == "oai22" ? rtlgen::MuxStyle::kOai22Fused
                                : rtlgen::MuxStyle::kTGateNor;
    } else if (k == "temp_c") {
      // reserved for corner sweeps; compile uses the nominal corner
    } else {
      throw std::invalid_argument("unknown spec key: " + k);
    }
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> kv;
  std::string out_dir = "syndcim_out";
  bool search_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--spec" && i + 1 < argc) {
      std::ifstream f(argv[++i]);
      if (!f) {
        std::cerr << "cannot open spec file " << argv[i] << "\n";
        return 2;
      }
      std::string line;
      while (std::getline(f, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        const auto eq = line.find('=');
        if (eq == std::string::npos) continue;
        auto trim = [](std::string s) {
          const auto b = s.find_first_not_of(" \t");
          const auto e = s.find_last_not_of(" \t");
          return b == std::string::npos ? std::string()
                                        : s.substr(b, e - b + 1);
        };
        kv[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
      }
    } else if (a == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (a == "--search-only") {
      search_only = true;
    } else if (a.find('=') != std::string::npos) {
      const auto eq = a.find('=');
      kv[a.substr(0, eq)] = a.substr(eq + 1);
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return 2;
    }
  }

  try {
    const core::PerfSpec spec = spec_from_kv(kv);
    std::cerr << "spec: " << spec.rows << "x" << spec.cols
              << " MCR=" << spec.mcr << " @ " << spec.mac_freq_mhz
              << " MHz, " << spec.vdd << " V\n";
    const auto lib =
        cell::characterize_default_library(tech::make_default_40nm());
    core::SynDcimCompiler compiler(lib);

    if (search_only) {
      const auto res = compiler.search(spec);
      core::TextTable t({"label", "feasible", "fmax_MHz", "power_uW",
                         "area_um2"});
      for (const auto& p : res.pareto) {
        t.add_row({p.label, core::TextTable::yesno(p.feasible),
                   core::TextTable::num(p.ppa.fmax_mhz, 0),
                   core::TextTable::num(p.ppa.power_uw, 0),
                   core::TextTable::num(p.ppa.area_um2, 0)});
      }
      t.print(std::cout);
      return res.feasible() ? 0 : 1;
    }

    const auto result = compiler.compile(spec);
    std::cout << "selected " << result.selected.label << " ("
              << result.search.pareto.size() << " Pareto points)\n";
    std::cout << "post-layout: fmax "
              << core::TextTable::num(result.impl.fmax_mhz, 0) << " MHz, "
              << core::TextTable::num(result.impl.macro_area_mm2, 4)
              << " mm^2, "
              << core::TextTable::num(result.impl.total_power_uw, 0)
              << " uW, DRC " << (result.impl.drc.clean() ? "clean" : "DIRTY")
              << ", LVS " << (result.impl.lvs.clean() ? "clean" : "DIRTY")
              << ", timing "
              << (result.impl.timing.met() ? "met" : "VIOLATED") << "\n";
    for (const auto& f :
         core::write_artifacts(result, spec, lib, out_dir)) {
      std::cout << "wrote " << f << "\n";
    }
    return result.impl.signoff_clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

// Command-line client for a running `syndcim serve` daemon: sends one or
// many requests over the syndcim-serve v1 NDJSON protocol and prints the
// response line(s) to stdout.
//
//   syndcim_client --port N [--host H] <method> [key=value ...]
//                  [--deadline-ms N] [--netlist FILE]
//                  [--param-file KEY FILE] [--extract KEY FILE]
//                  [--concurrent K] [--batch FILE] [--out FILE]
//
//   method              compile | sweep | netmap | lint | metrics |
//                       status | shutdown
//   key=value           request params (spec keys, sweep_* grid keys,
//                       budget_macros, ...)
//   --deadline-ms N     per-request deadline (server answers 408 past it)
//   --param-file KEY FILE  ship FILE's contents as the string param KEY
//                       (how model/frontier/netlist documents travel,
//                       e.g. --param-file model examples/models/kws.json)
//   --netlist FILE      sugar for --param-file netlist FILE
//   --extract KEY FILE  write the first result's string field KEY to FILE
//                       byte-for-byte (e.g. a netmap's report_json —
//                       identical to the batch CLI's --json output)
//   --concurrent K      pipeline K copies of the request on ONE
//                       connection (single-flight demo); prints K lines
//   --batch FILE        pipeline one request per line of FILE on ONE
//                       connection; a line is `method key=value ...`
//                       where `key@=FILE` loads the value from FILE
//                       (`#` starts a comment). Responses print in line
//                       order however they arrive — the daemon's workers
//                       finish out of order and the client matches on
//                       the protocol's `id` field.
//   --out FILE          also write the response line(s) to FILE
//
// Exit status: 0 every response ok, 1 any error response (code printed),
// 2 usage / transport failure.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"

using namespace syndcim;

namespace {

void usage(std::ostream& os) {
  os << "usage: syndcim_client --port N [--host H] <method> [key=value ...]\n"
        "               [--deadline-ms N] [--netlist FILE]\n"
        "               [--param-file KEY FILE] [--extract KEY FILE]\n"
        "               [--concurrent K] [--batch FILE] [--out FILE]\n"
        "  methods: compile sweep netmap lint metrics status shutdown\n"
        "  --batch lines: method key=value ... (key@=FILE loads a file)\n"
        "  exit status: 0 ok, 1 error response, 2 usage/transport\n";
}

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string method;
  std::map<std::string, std::string> params;
  double deadline_ms = 0;
  std::string extract_key, extract_path;
  int concurrent = 1;
  std::string batch_path;
  std::string out_path;
};

/// One request to pipeline: a method and its (already file-expanded)
/// string params.
struct BatchItem {
  std::string method;
  std::map<std::string, std::string> params;
};

bool slurp(const std::string& path, std::string* out, std::string* err) {
  std::ifstream f(path);
  if (!f) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

bool parse_args(int argc, char** argv, Options* opt, std::string* err) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        *err = std::string(flag) + " wants a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (a == "--port") {
      const char* v = next("--port");
      if (v == nullptr) return false;
      opt->port = std::atoi(v);
    } else if (a == "--host") {
      const char* v = next("--host");
      if (v == nullptr) return false;
      opt->host = v;
    } else if (a == "--deadline-ms") {
      const char* v = next("--deadline-ms");
      if (v == nullptr) return false;
      opt->deadline_ms = std::atof(v);
    } else if (a == "--netlist" || a == "--param-file") {
      std::string key = "netlist";
      if (a == "--param-file") {
        const char* k = next("--param-file");
        if (k == nullptr) return false;
        key = k;
      }
      const char* p = next(a.c_str());
      if (p == nullptr) return false;
      std::string text;
      if (!slurp(p, &text, err)) return false;
      opt->params[key] = std::move(text);
    } else if (a == "--extract") {
      const char* k = next("--extract");
      if (k == nullptr) return false;
      const char* p = next("--extract");
      if (p == nullptr) return false;
      opt->extract_key = k;
      opt->extract_path = p;
    } else if (a == "--concurrent") {
      const char* v = next("--concurrent");
      if (v == nullptr) return false;
      opt->concurrent = std::atoi(v);
    } else if (a == "--batch") {
      const char* v = next("--batch");
      if (v == nullptr) return false;
      opt->batch_path = v;
    } else if (a == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      opt->out_path = v;
    } else if (a.find('=') != std::string::npos && a[0] != '-') {
      const auto eq = a.find('=');
      opt->params[a.substr(0, eq)] = a.substr(eq + 1);
    } else if (!a.empty() && a[0] != '-' && opt->method.empty()) {
      opt->method = a;
    } else {
      *err = "unknown argument: " + a;
      return false;
    }
  }
  if (opt->method.empty() && opt->batch_path.empty()) {
    *err = "missing method";
    return false;
  }
  if (opt->port <= 0) {
    *err = "missing --port";
    return false;
  }
  if (opt->concurrent < 1) {
    *err = "--concurrent wants a positive integer";
    return false;
  }
  return true;
}

/// Parses a --batch file: one request per non-empty, non-comment line,
/// `method key=value ...`; a `key@=FILE` pair loads the value from FILE
/// relative to the working directory.
bool parse_batch_file(const std::string& path, std::vector<BatchItem>* items,
                      std::string* err) {
  std::ifstream f(path);
  if (!f) {
    *err = "cannot open " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    BatchItem item;
    std::string tok;
    while (ls >> tok) {
      const auto at_eq = tok.find("@=");
      const auto eq = tok.find('=');
      if (item.method.empty()) {
        if (eq != std::string::npos) {
          *err = path + ":" + std::to_string(lineno) +
                 ": line must start with a method name";
          return false;
        }
        item.method = tok;
      } else if (at_eq != std::string::npos) {
        std::string text;
        if (!slurp(tok.substr(at_eq + 2), &text, err)) {
          *err = path + ":" + std::to_string(lineno) + ": " + *err;
          return false;
        }
        item.params[tok.substr(0, at_eq)] = std::move(text);
      } else if (eq != std::string::npos) {
        item.params[tok.substr(0, eq)] = tok.substr(eq + 1);
      } else {
        *err = path + ":" + std::to_string(lineno) + ": '" + tok +
               "' is neither key=value nor key@=FILE";
        return false;
      }
    }
    if (!item.method.empty()) items->push_back(std::move(item));
  }
  if (items->empty()) {
    *err = path + ": no requests";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string err;
  if (!parse_args(argc, argv, &opt, &err)) {
    std::cerr << "error: " << err << "\n";
    usage(std::cerr);
    return 2;
  }

  // The request list: a batch file, or `--concurrent` copies of the one
  // request named on the command line (default 1).
  std::vector<BatchItem> items;
  if (!opt.batch_path.empty()) {
    if (!parse_batch_file(opt.batch_path, &items, &err)) {
      std::cerr << "error: " << err << "\n";
      return 2;
    }
  } else {
    for (int i = 0; i < opt.concurrent; ++i) {
      items.push_back({opt.method, opt.params});
    }
  }

  // Everything rides ONE connection: requests pipeline back-to-back and
  // the daemon's workers answer in completion order; the client files
  // responses by the echoed `id` and reports them in request order.
  serve::MultiplexClient client;
  if (!client.connect(opt.host, opt.port, &err)) {
    std::cerr << "error: " << err << "\n";
    return 2;
  }
  std::vector<std::string> ids;
  ids.reserve(items.size());
  for (const BatchItem& item : items) {
    const std::string id =
        client.send(item.method, item.params, "", "", opt.deadline_ms, &err);
    if (id.empty()) {
      std::cerr << "error: " << err << "\n";
      return 2;
    }
    ids.push_back(id);
  }
  if (items.size() > 1) {
    std::cerr << items.size()
              << " requests pipelined on one connection; responses matched "
                 "by id\n";
  }

  std::ofstream out;
  if (!opt.out_path.empty()) {
    out.open(opt.out_path);
    if (!out) {
      std::cerr << "error: cannot write " << opt.out_path << "\n";
      return 2;
    }
  }

  int rc = 0;
  std::vector<serve::ClientResponse> resps(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!client.wait(ids[i], &resps[i], &err)) {
      std::cerr << "error: " << err << "\n";
      return 2;
    }
    const serve::ClientResponse& r = resps[i];
    std::cout << r.raw << "\n";
    if (out.is_open()) out << r.raw << "\n";
    if (!r.ok) {
      std::cerr << "error response: code " << r.code << " (" << r.reason
                << ")\n";
      if (rc == 0) rc = 1;
    }
  }

  if (rc == 0 && !opt.extract_key.empty()) {
    const serve::JsonValue* field = resps[0].result.find(opt.extract_key);
    if (field == nullptr || !field->is_string()) {
      std::cerr << "error: result has no string field '" << opt.extract_key
                << "'\n";
      return 2;
    }
    std::ofstream ef(opt.extract_path, std::ios::binary);
    if (!ef) {
      std::cerr << "error: cannot write " << opt.extract_path << "\n";
      return 2;
    }
    ef << field->as_string();
    std::cerr << "wrote " << opt.extract_path << "\n";
  }
  return rc;
}

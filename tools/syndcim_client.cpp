// Command-line client for a running `syndcim serve` daemon: sends one
// request over the syndcim-serve v1 NDJSON protocol and prints the
// response line to stdout.
//
//   syndcim_client --port N [--host H] <method> [key=value ...]
//                  [--deadline-ms N] [--netlist FILE]
//                  [--extract KEY FILE] [--concurrent K] [--out FILE]
//
//   method              compile | sweep | lint | metrics | status | shutdown
//   key=value           request params (spec keys, sweep_* grid keys, ...)
//   --deadline-ms N     per-request deadline (server answers 408 past it)
//   --netlist FILE      lint only: ship FILE's contents as params.netlist
//   --extract KEY FILE  write the result's string field KEY to FILE
//                       byte-for-byte (e.g. a sweep's frontier_json —
//                       identical to the batch CLI's --frontier-json)
//   --concurrent K      open K connections and send the identical request
//                       concurrently (single-flight demo); prints K lines
//   --out FILE          also write the response line(s) to FILE
//
// Exit status: 0 every response ok, 1 any error response (code printed),
// 2 usage / transport failure.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"

using namespace syndcim;

namespace {

void usage(std::ostream& os) {
  os << "usage: syndcim_client --port N [--host H] <method> [key=value ...]\n"
        "               [--deadline-ms N] [--netlist FILE]\n"
        "               [--extract KEY FILE] [--concurrent K] [--out FILE]\n"
        "  methods: compile sweep lint metrics status shutdown\n"
        "  exit status: 0 ok, 1 error response, 2 usage/transport\n";
}

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string method;
  std::map<std::string, std::string> params;
  double deadline_ms = 0;
  std::string netlist_path;
  std::string extract_key, extract_path;
  int concurrent = 1;
  std::string out_path;
};

bool parse_args(int argc, char** argv, Options* opt, std::string* err) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        *err = std::string(flag) + " wants a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (a == "--port") {
      const char* v = next("--port");
      if (v == nullptr) return false;
      opt->port = std::atoi(v);
    } else if (a == "--host") {
      const char* v = next("--host");
      if (v == nullptr) return false;
      opt->host = v;
    } else if (a == "--deadline-ms") {
      const char* v = next("--deadline-ms");
      if (v == nullptr) return false;
      opt->deadline_ms = std::atof(v);
    } else if (a == "--netlist") {
      const char* v = next("--netlist");
      if (v == nullptr) return false;
      opt->netlist_path = v;
    } else if (a == "--extract") {
      const char* k = next("--extract");
      if (k == nullptr) return false;
      const char* p = next("--extract");
      if (p == nullptr) return false;
      opt->extract_key = k;
      opt->extract_path = p;
    } else if (a == "--concurrent") {
      const char* v = next("--concurrent");
      if (v == nullptr) return false;
      opt->concurrent = std::atoi(v);
    } else if (a == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      opt->out_path = v;
    } else if (a.find('=') != std::string::npos && a[0] != '-') {
      const auto eq = a.find('=');
      opt->params[a.substr(0, eq)] = a.substr(eq + 1);
    } else if (!a.empty() && a[0] != '-' && opt->method.empty()) {
      opt->method = a;
    } else {
      *err = "unknown argument: " + a;
      return false;
    }
  }
  if (opt->method.empty()) {
    *err = "missing method";
    return false;
  }
  if (opt->port <= 0) {
    *err = "missing --port";
    return false;
  }
  if (opt->concurrent < 1) {
    *err = "--concurrent wants a positive integer";
    return false;
  }
  return true;
}

/// One connection, one request; fills `resp` (transport failure -> false
/// with a reason in `err`).
bool run_once(const Options& opt, const std::string& netlist,
              serve::ClientResponse* resp, std::string* err) {
  serve::Client client;
  if (!client.connect(opt.host, opt.port, err)) return false;
  if (!opt.netlist_path.empty()) {
    return client.call_extra(opt.method, opt.params, "netlist", netlist,
                             opt.deadline_ms, resp, err);
  }
  return client.call(opt.method, opt.params, opt.deadline_ms, resp, err);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string err;
  if (!parse_args(argc, argv, &opt, &err)) {
    std::cerr << "error: " << err << "\n";
    usage(std::cerr);
    return 2;
  }

  std::string netlist;
  if (!opt.netlist_path.empty()) {
    std::ifstream f(opt.netlist_path);
    if (!f) {
      std::cerr << "error: cannot open " << opt.netlist_path << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    netlist = ss.str();
  }

  std::vector<serve::ClientResponse> resps(
      static_cast<std::size_t>(opt.concurrent));
  std::vector<std::string> errs(static_cast<std::size_t>(opt.concurrent));
  std::vector<bool> oks(static_cast<std::size_t>(opt.concurrent), false);
  if (opt.concurrent == 1) {
    oks[0] = run_once(opt, netlist, &resps[0], &errs[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(opt.concurrent));
    for (int i = 0; i < opt.concurrent; ++i) {
      threads.emplace_back([&, i] {
        bool ok = run_once(opt, netlist, &resps[static_cast<std::size_t>(i)],
                           &errs[static_cast<std::size_t>(i)]);
        oks[static_cast<std::size_t>(i)] = ok;
      });
    }
    for (std::thread& t : threads) t.join();
  }

  std::ofstream out;
  if (!opt.out_path.empty()) {
    out.open(opt.out_path);
    if (!out) {
      std::cerr << "error: cannot write " << opt.out_path << "\n";
      return 2;
    }
  }

  int rc = 0;
  for (int i = 0; i < opt.concurrent; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!oks[idx]) {
      std::cerr << "error: " << errs[idx] << "\n";
      rc = 2;
      continue;
    }
    const serve::ClientResponse& r = resps[idx];
    std::cout << r.raw << "\n";
    if (out.is_open()) out << r.raw << "\n";
    if (!r.ok) {
      std::cerr << "error response: code " << r.code << " (" << r.reason
                << ")\n";
      if (rc == 0) rc = 1;
    }
  }

  if (rc == 0 && !opt.extract_key.empty()) {
    const serve::JsonValue* field = resps[0].result.find(opt.extract_key);
    if (field == nullptr || !field->is_string()) {
      std::cerr << "error: result has no string field '" << opt.extract_key
                << "'\n";
      return 2;
    }
    std::ofstream ef(opt.extract_path, std::ios::binary);
    if (!ef) {
      std::cerr << "error: cannot write " << opt.extract_path << "\n";
      return 2;
    }
    ef << field->as_string();
    std::cerr << "wrote " << opt.extract_path << "\n";
  }
  return rc;
}

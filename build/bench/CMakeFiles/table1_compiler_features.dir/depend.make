# Empty dependencies file for table1_compiler_features.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_adder_trees.dir/ablation_adder_trees.cpp.o"
  "CMakeFiles/ablation_adder_trees.dir/ablation_adder_trees.cpp.o.d"
  "ablation_adder_trees"
  "ablation_adder_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adder_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_adder_trees.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_search_techniques.dir/ablation_search_techniques.cpp.o"
  "CMakeFiles/ablation_search_techniques.dir/ablation_search_techniques.cpp.o.d"
  "ablation_search_techniques"
  "ablation_search_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

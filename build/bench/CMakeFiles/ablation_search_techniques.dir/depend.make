# Empty dependencies file for ablation_search_techniques.
# This may be replaced when dependencies are built.

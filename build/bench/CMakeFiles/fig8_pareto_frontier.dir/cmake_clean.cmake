file(REMOVE_RECURSE
  "CMakeFiles/fig8_pareto_frontier.dir/fig8_pareto_frontier.cpp.o"
  "CMakeFiles/fig8_pareto_frontier.dir/fig8_pareto_frontier.cpp.o.d"
  "fig8_pareto_frontier"
  "fig8_pareto_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_pareto_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

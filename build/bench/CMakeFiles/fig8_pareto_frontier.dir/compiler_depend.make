# Empty compiler generated dependencies file for fig8_pareto_frontier.
# This may be replaced when dependencies are built.

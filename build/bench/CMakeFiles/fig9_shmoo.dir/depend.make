# Empty dependencies file for fig9_shmoo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig9_shmoo.dir/fig9_shmoo.cpp.o"
  "CMakeFiles/fig9_shmoo.dir/fig9_shmoo.cpp.o.d"
  "fig9_shmoo"
  "fig9_shmoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_shmoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_sdp_placement.
# This may be replaced when dependencies are built.

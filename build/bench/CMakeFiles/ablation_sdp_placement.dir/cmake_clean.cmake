file(REMOVE_RECURSE
  "CMakeFiles/ablation_sdp_placement.dir/ablation_sdp_placement.cpp.o"
  "CMakeFiles/ablation_sdp_placement.dir/ablation_sdp_placement.cpp.o.d"
  "ablation_sdp_placement"
  "ablation_sdp_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sdp_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table2_sota_comparison.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_mux_styles.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_mux_styles.dir/ablation_mux_styles.cpp.o"
  "CMakeFiles/ablation_mux_styles.dir/ablation_mux_styles.cpp.o.d"
  "ablation_mux_styles"
  "ablation_mux_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mux_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_pvt_yield.
# This may be replaced when dependencies are built.

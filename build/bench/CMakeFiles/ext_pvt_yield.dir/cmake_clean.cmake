file(REMOVE_RECURSE
  "CMakeFiles/ext_pvt_yield.dir/ext_pvt_yield.cpp.o"
  "CMakeFiles/ext_pvt_yield.dir/ext_pvt_yield.cpp.o.d"
  "ext_pvt_yield"
  "ext_pvt_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pvt_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

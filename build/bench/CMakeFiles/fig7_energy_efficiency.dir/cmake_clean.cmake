file(REMOVE_RECURSE
  "CMakeFiles/fig7_energy_efficiency.dir/fig7_energy_efficiency.cpp.o"
  "CMakeFiles/fig7_energy_efficiency.dir/fig7_energy_efficiency.cpp.o.d"
  "fig7_energy_efficiency"
  "fig7_energy_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_energy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig7_energy_efficiency.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for syn_layout.
# This may be replaced when dependencies are built.

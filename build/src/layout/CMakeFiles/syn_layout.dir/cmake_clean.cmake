file(REMOVE_RECURSE
  "CMakeFiles/syn_layout.dir/floorplan.cpp.o"
  "CMakeFiles/syn_layout.dir/floorplan.cpp.o.d"
  "CMakeFiles/syn_layout.dir/route.cpp.o"
  "CMakeFiles/syn_layout.dir/route.cpp.o.d"
  "CMakeFiles/syn_layout.dir/sdp_script.cpp.o"
  "CMakeFiles/syn_layout.dir/sdp_script.cpp.o.d"
  "libsyn_layout.a"
  "libsyn_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

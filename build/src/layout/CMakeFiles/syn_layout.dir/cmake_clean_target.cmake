file(REMOVE_RECURSE
  "libsyn_layout.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/syn_sta.dir/sdc.cpp.o"
  "CMakeFiles/syn_sta.dir/sdc.cpp.o.d"
  "CMakeFiles/syn_sta.dir/sta.cpp.o"
  "CMakeFiles/syn_sta.dir/sta.cpp.o.d"
  "libsyn_sta.a"
  "libsyn_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for syn_sta.
# This may be replaced when dependencies are built.

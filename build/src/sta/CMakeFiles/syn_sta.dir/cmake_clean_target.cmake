file(REMOVE_RECURSE
  "libsyn_sta.a"
)

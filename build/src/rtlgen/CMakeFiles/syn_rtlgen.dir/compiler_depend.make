# Empty compiler generated dependencies file for syn_rtlgen.
# This may be replaced when dependencies are built.

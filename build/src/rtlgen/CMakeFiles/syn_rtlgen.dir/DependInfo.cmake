
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtlgen/adder_tree.cpp" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/adder_tree.cpp.o" "gcc" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/adder_tree.cpp.o.d"
  "/root/repo/src/rtlgen/alignment_unit.cpp" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/alignment_unit.cpp.o" "gcc" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/alignment_unit.cpp.o.d"
  "/root/repo/src/rtlgen/arch.cpp" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/arch.cpp.o" "gcc" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/arch.cpp.o.d"
  "/root/repo/src/rtlgen/drivers.cpp" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/drivers.cpp.o" "gcc" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/drivers.cpp.o.d"
  "/root/repo/src/rtlgen/gates.cpp" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/gates.cpp.o" "gcc" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/gates.cpp.o.d"
  "/root/repo/src/rtlgen/macro.cpp" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/macro.cpp.o" "gcc" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/macro.cpp.o.d"
  "/root/repo/src/rtlgen/ofu.cpp" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/ofu.cpp.o" "gcc" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/ofu.cpp.o.d"
  "/root/repo/src/rtlgen/shift_adder.cpp" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/shift_adder.cpp.o" "gcc" "src/rtlgen/CMakeFiles/syn_rtlgen.dir/shift_adder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/syn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/syn_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/syn_rtlgen.dir/adder_tree.cpp.o"
  "CMakeFiles/syn_rtlgen.dir/adder_tree.cpp.o.d"
  "CMakeFiles/syn_rtlgen.dir/alignment_unit.cpp.o"
  "CMakeFiles/syn_rtlgen.dir/alignment_unit.cpp.o.d"
  "CMakeFiles/syn_rtlgen.dir/arch.cpp.o"
  "CMakeFiles/syn_rtlgen.dir/arch.cpp.o.d"
  "CMakeFiles/syn_rtlgen.dir/drivers.cpp.o"
  "CMakeFiles/syn_rtlgen.dir/drivers.cpp.o.d"
  "CMakeFiles/syn_rtlgen.dir/gates.cpp.o"
  "CMakeFiles/syn_rtlgen.dir/gates.cpp.o.d"
  "CMakeFiles/syn_rtlgen.dir/macro.cpp.o"
  "CMakeFiles/syn_rtlgen.dir/macro.cpp.o.d"
  "CMakeFiles/syn_rtlgen.dir/ofu.cpp.o"
  "CMakeFiles/syn_rtlgen.dir/ofu.cpp.o.d"
  "CMakeFiles/syn_rtlgen.dir/shift_adder.cpp.o"
  "CMakeFiles/syn_rtlgen.dir/shift_adder.cpp.o.d"
  "libsyn_rtlgen.a"
  "libsyn_rtlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_rtlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for syn_rtlgen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsyn_rtlgen.a"
)

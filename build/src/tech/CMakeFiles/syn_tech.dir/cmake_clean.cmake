file(REMOVE_RECURSE
  "CMakeFiles/syn_tech.dir/scaling.cpp.o"
  "CMakeFiles/syn_tech.dir/scaling.cpp.o.d"
  "CMakeFiles/syn_tech.dir/tech_node.cpp.o"
  "CMakeFiles/syn_tech.dir/tech_node.cpp.o.d"
  "libsyn_tech.a"
  "libsyn_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for syn_tech.
# This may be replaced when dependencies are built.

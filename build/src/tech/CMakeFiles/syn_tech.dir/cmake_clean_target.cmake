file(REMOVE_RECURSE
  "libsyn_tech.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/syn_num.dir/alignment.cpp.o"
  "CMakeFiles/syn_num.dir/alignment.cpp.o.d"
  "CMakeFiles/syn_num.dir/fp_format.cpp.o"
  "CMakeFiles/syn_num.dir/fp_format.cpp.o.d"
  "libsyn_num.a"
  "libsyn_num.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_num.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

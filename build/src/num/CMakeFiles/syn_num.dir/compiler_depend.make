# Empty compiler generated dependencies file for syn_num.
# This may be replaced when dependencies are built.

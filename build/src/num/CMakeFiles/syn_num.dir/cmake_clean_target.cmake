file(REMOVE_RECURSE
  "libsyn_num.a"
)

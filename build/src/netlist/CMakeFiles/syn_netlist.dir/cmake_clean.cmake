file(REMOVE_RECURSE
  "CMakeFiles/syn_netlist.dir/design.cpp.o"
  "CMakeFiles/syn_netlist.dir/design.cpp.o.d"
  "CMakeFiles/syn_netlist.dir/flatten.cpp.o"
  "CMakeFiles/syn_netlist.dir/flatten.cpp.o.d"
  "CMakeFiles/syn_netlist.dir/module.cpp.o"
  "CMakeFiles/syn_netlist.dir/module.cpp.o.d"
  "CMakeFiles/syn_netlist.dir/verilog.cpp.o"
  "CMakeFiles/syn_netlist.dir/verilog.cpp.o.d"
  "CMakeFiles/syn_netlist.dir/verilog_parser.cpp.o"
  "CMakeFiles/syn_netlist.dir/verilog_parser.cpp.o.d"
  "libsyn_netlist.a"
  "libsyn_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsyn_netlist.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/design.cpp" "src/netlist/CMakeFiles/syn_netlist.dir/design.cpp.o" "gcc" "src/netlist/CMakeFiles/syn_netlist.dir/design.cpp.o.d"
  "/root/repo/src/netlist/flatten.cpp" "src/netlist/CMakeFiles/syn_netlist.dir/flatten.cpp.o" "gcc" "src/netlist/CMakeFiles/syn_netlist.dir/flatten.cpp.o.d"
  "/root/repo/src/netlist/module.cpp" "src/netlist/CMakeFiles/syn_netlist.dir/module.cpp.o" "gcc" "src/netlist/CMakeFiles/syn_netlist.dir/module.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/syn_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/syn_netlist.dir/verilog.cpp.o.d"
  "/root/repo/src/netlist/verilog_parser.cpp" "src/netlist/CMakeFiles/syn_netlist.dir/verilog_parser.cpp.o" "gcc" "src/netlist/CMakeFiles/syn_netlist.dir/verilog_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

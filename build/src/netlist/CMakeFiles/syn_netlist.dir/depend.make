# Empty dependencies file for syn_netlist.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for syn_mapper.
# This may be replaced when dependencies are built.

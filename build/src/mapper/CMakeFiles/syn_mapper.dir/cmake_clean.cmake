file(REMOVE_RECURSE
  "CMakeFiles/syn_mapper.dir/mapper.cpp.o"
  "CMakeFiles/syn_mapper.dir/mapper.cpp.o.d"
  "libsyn_mapper.a"
  "libsyn_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsyn_mapper.a"
)

file(REMOVE_RECURSE
  "libsyn_power.a"
)

# Empty dependencies file for syn_power.
# This may be replaced when dependencies are built.

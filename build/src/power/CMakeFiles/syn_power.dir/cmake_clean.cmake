file(REMOVE_RECURSE
  "CMakeFiles/syn_power.dir/activity.cpp.o"
  "CMakeFiles/syn_power.dir/activity.cpp.o.d"
  "CMakeFiles/syn_power.dir/power.cpp.o"
  "CMakeFiles/syn_power.dir/power.cpp.o.d"
  "libsyn_power.a"
  "libsyn_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/syn_cell.dir/cell.cpp.o"
  "CMakeFiles/syn_cell.dir/cell.cpp.o.d"
  "CMakeFiles/syn_cell.dir/characterize.cpp.o"
  "CMakeFiles/syn_cell.dir/characterize.cpp.o.d"
  "CMakeFiles/syn_cell.dir/liberty.cpp.o"
  "CMakeFiles/syn_cell.dir/liberty.cpp.o.d"
  "CMakeFiles/syn_cell.dir/liberty_parser.cpp.o"
  "CMakeFiles/syn_cell.dir/liberty_parser.cpp.o.d"
  "CMakeFiles/syn_cell.dir/library.cpp.o"
  "CMakeFiles/syn_cell.dir/library.cpp.o.d"
  "CMakeFiles/syn_cell.dir/lut2d.cpp.o"
  "CMakeFiles/syn_cell.dir/lut2d.cpp.o.d"
  "libsyn_cell.a"
  "libsyn_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

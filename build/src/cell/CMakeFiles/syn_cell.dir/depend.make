# Empty dependencies file for syn_cell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsyn_cell.a"
)

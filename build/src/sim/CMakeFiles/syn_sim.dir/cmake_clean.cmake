file(REMOVE_RECURSE
  "CMakeFiles/syn_sim.dir/equivalence.cpp.o"
  "CMakeFiles/syn_sim.dir/equivalence.cpp.o.d"
  "CMakeFiles/syn_sim.dir/gate_sim.cpp.o"
  "CMakeFiles/syn_sim.dir/gate_sim.cpp.o.d"
  "CMakeFiles/syn_sim.dir/macro_model.cpp.o"
  "CMakeFiles/syn_sim.dir/macro_model.cpp.o.d"
  "CMakeFiles/syn_sim.dir/macro_tb.cpp.o"
  "CMakeFiles/syn_sim.dir/macro_tb.cpp.o.d"
  "libsyn_sim.a"
  "libsyn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsyn_sim.a"
)

# Empty compiler generated dependencies file for syn_sim.
# This may be replaced when dependencies are built.

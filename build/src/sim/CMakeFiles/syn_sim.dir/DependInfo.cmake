
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/equivalence.cpp" "src/sim/CMakeFiles/syn_sim.dir/equivalence.cpp.o" "gcc" "src/sim/CMakeFiles/syn_sim.dir/equivalence.cpp.o.d"
  "/root/repo/src/sim/gate_sim.cpp" "src/sim/CMakeFiles/syn_sim.dir/gate_sim.cpp.o" "gcc" "src/sim/CMakeFiles/syn_sim.dir/gate_sim.cpp.o.d"
  "/root/repo/src/sim/macro_model.cpp" "src/sim/CMakeFiles/syn_sim.dir/macro_model.cpp.o" "gcc" "src/sim/CMakeFiles/syn_sim.dir/macro_model.cpp.o.d"
  "/root/repo/src/sim/macro_tb.cpp" "src/sim/CMakeFiles/syn_sim.dir/macro_tb.cpp.o" "gcc" "src/sim/CMakeFiles/syn_sim.dir/macro_tb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/syn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/syn_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/rtlgen/CMakeFiles/syn_rtlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/syn_num.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/syn_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

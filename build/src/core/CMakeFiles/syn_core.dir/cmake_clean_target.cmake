file(REMOVE_RECURSE
  "libsyn_core.a"
)

# Empty compiler generated dependencies file for syn_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/syn_core.dir/artifacts.cpp.o"
  "CMakeFiles/syn_core.dir/artifacts.cpp.o.d"
  "CMakeFiles/syn_core.dir/baselines.cpp.o"
  "CMakeFiles/syn_core.dir/baselines.cpp.o.d"
  "CMakeFiles/syn_core.dir/compiler.cpp.o"
  "CMakeFiles/syn_core.dir/compiler.cpp.o.d"
  "CMakeFiles/syn_core.dir/design_point.cpp.o"
  "CMakeFiles/syn_core.dir/design_point.cpp.o.d"
  "CMakeFiles/syn_core.dir/report.cpp.o"
  "CMakeFiles/syn_core.dir/report.cpp.o.d"
  "CMakeFiles/syn_core.dir/scl.cpp.o"
  "CMakeFiles/syn_core.dir/scl.cpp.o.d"
  "CMakeFiles/syn_core.dir/searcher.cpp.o"
  "CMakeFiles/syn_core.dir/searcher.cpp.o.d"
  "CMakeFiles/syn_core.dir/spec.cpp.o"
  "CMakeFiles/syn_core.dir/spec.cpp.o.d"
  "libsyn_core.a"
  "libsyn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

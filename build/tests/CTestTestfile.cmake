# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tech_test[1]_include.cmake")
include("/root/repo/build/tests/num_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/cell_test[1]_include.cmake")
include("/root/repo/build/tests/adder_tree_test[1]_include.cmake")
include("/root/repo/build/tests/subcircuit_test[1]_include.cmake")
include("/root/repo/build/tests/macro_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/gates_test[1]_include.cmake")
include("/root/repo/build/tests/mapper_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/macro_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")

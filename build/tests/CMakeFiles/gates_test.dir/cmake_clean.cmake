file(REMOVE_RECURSE
  "CMakeFiles/gates_test.dir/gates_test.cpp.o"
  "CMakeFiles/gates_test.dir/gates_test.cpp.o.d"
  "gates_test"
  "gates_test.pdb"
  "gates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for gates_test.
# This may be replaced when dependencies are built.

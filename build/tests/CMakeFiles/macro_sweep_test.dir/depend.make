# Empty dependencies file for macro_sweep_test.
# This may be replaced when dependencies are built.

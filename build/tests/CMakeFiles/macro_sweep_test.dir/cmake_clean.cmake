file(REMOVE_RECURSE
  "CMakeFiles/macro_sweep_test.dir/macro_sweep_test.cpp.o"
  "CMakeFiles/macro_sweep_test.dir/macro_sweep_test.cpp.o.d"
  "macro_sweep_test"
  "macro_sweep_test.pdb"
  "macro_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macro_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for num_test.
# This may be replaced when dependencies are built.

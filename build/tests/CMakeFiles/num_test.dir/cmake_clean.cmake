file(REMOVE_RECURSE
  "CMakeFiles/num_test.dir/num_test.cpp.o"
  "CMakeFiles/num_test.dir/num_test.cpp.o.d"
  "num_test"
  "num_test.pdb"
  "num_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/num_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for adder_tree_test.
# This may be replaced when dependencies are built.

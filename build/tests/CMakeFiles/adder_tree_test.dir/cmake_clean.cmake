file(REMOVE_RECURSE
  "CMakeFiles/adder_tree_test.dir/adder_tree_test.cpp.o"
  "CMakeFiles/adder_tree_test.dir/adder_tree_test.cpp.o.d"
  "adder_tree_test"
  "adder_tree_test.pdb"
  "adder_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

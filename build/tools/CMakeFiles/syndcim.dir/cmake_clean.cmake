file(REMOVE_RECURSE
  "CMakeFiles/syndcim.dir/syndcim_cli.cpp.o"
  "CMakeFiles/syndcim.dir/syndcim_cli.cpp.o.d"
  "syndcim"
  "syndcim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndcim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

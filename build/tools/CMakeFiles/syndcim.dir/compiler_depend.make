# Empty compiler generated dependencies file for syndcim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cnn_accelerator_study.dir/cnn_accelerator_study.cpp.o"
  "CMakeFiles/cnn_accelerator_study.dir/cnn_accelerator_study.cpp.o.d"
  "cnn_accelerator_study"
  "cnn_accelerator_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_accelerator_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

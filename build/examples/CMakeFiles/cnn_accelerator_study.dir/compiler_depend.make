# Empty compiler generated dependencies file for cnn_accelerator_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cloud_gemm_tiling.dir/cloud_gemm_tiling.cpp.o"
  "CMakeFiles/cloud_gemm_tiling.dir/cloud_gemm_tiling.cpp.o.d"
  "cloud_gemm_tiling"
  "cloud_gemm_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_gemm_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

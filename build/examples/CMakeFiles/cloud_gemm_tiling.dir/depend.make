# Empty dependencies file for cloud_gemm_tiling.
# This may be replaced when dependencies are built.

# Empty dependencies file for edge_keyword_spotting.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/edge_keyword_spotting.dir/edge_keyword_spotting.cpp.o"
  "CMakeFiles/edge_keyword_spotting.dir/edge_keyword_spotting.cpp.o.d"
  "edge_keyword_spotting"
  "edge_keyword_spotting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_keyword_spotting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

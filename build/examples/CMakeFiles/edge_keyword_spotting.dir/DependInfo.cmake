
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/edge_keyword_spotting.cpp" "examples/CMakeFiles/edge_keyword_spotting.dir/edge_keyword_spotting.cpp.o" "gcc" "examples/CMakeFiles/edge_keyword_spotting.dir/edge_keyword_spotting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/syn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/syn_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/syn_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/syn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/syn_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/rtlgen/CMakeFiles/syn_rtlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/syn_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/syn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/syn_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/syn_num.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/syn_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
